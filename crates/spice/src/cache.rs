//! Transient-simulation caching.
//!
//! A library-scale characterization run hits the same `(technology, arc, input point,
//! process seed)` coordinates repeatedly: the LUT baseline and the model-training stages
//! share grid corners, repeated runs of a resumable pipeline re-request identical sweeps,
//! and multi-metric work units re-simulate the same arc (one transient yields both delay
//! and slew).  A [`SimulationCache`] attached to a [`CharacterizationEngine`] short-circuits
//! those repeats: cache hits return the archived [`TimingMeasurement`] without running the
//! solver and **without incrementing the simulation counter**, so the counter keeps its
//! meaning of "transient simulations actually paid for".
//!
//! # Hit/miss accounting
//!
//! A **hit** is counted by every [`lookup`](SimulationCache::lookup) answered from the
//! cache; a **miss** is counted by every [`store`](SimulationCache::store), i.e. every
//! solve that was actually paid and archived.  A lookup that falls through is *not*
//! counted on its own: under the engine's single-flight coordination a request that
//! arrives while the same coordinate is already being solved waits and is then answered
//! from the cache (one hit), so every `simulate` request contributes exactly one hit or
//! one miss and the totals are deterministic regardless of thread interleaving.
//!
//! [`CharacterizationEngine`]: crate::engine::CharacterizationEngine

use crate::input::InputPoint;
use crate::measure::TimingMeasurement;
use crate::transient::TransientConfig;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use slic_cells::TimingArc;
use slic_device::ProcessSample;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Version stamp of the transient solver whose results a [`SimKey`] coordinates.
///
/// A persisted cache outlives the binary that wrote it, and two solver generations given
/// identical coordinates produce measurements that differ within the parity tolerance —
/// replaying one as the other would silently mix kernels inside a single artifact.  The
/// version is therefore part of the cache key: records written by an older kernel stay in
/// the log but can never answer a newer kernel's lookups.
///
/// History: **1** — the seed's slope-probe RK4 kernel (records written before the field
/// existed deserialize as this version); **2** — the Bogacki–Shampine 3(2) embedded pair
/// over compiled device models.
pub const KERNEL_VERSION: u64 = 2;

/// The version that keys cache records written before the kernel field existed.
const LEGACY_KERNEL_VERSION: u64 = 1;

/// The exact coordinates of one transient simulation.
///
/// Floating-point components are keyed by their bit patterns: two points are "the same"
/// only when they are bitwise identical, which is the right notion for caching replayed
/// deterministic campaigns (nearby-but-different points must not alias).  The one
/// exception is zero: `-0.0` is normalized to `+0.0` at construction, because the two
/// compare equal, simulate identically, and are produced by different code paths (e.g. a
/// nominal [`ProcessSample`] delta written as `0.0` here and computed as `-0.0` there) —
/// keying them apart would silently miss the cache.
///
/// The solver generation is part of the key (see [`KERNEL_VERSION`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimKey {
    kernel: u64,
    tech: String,
    arc: TimingArc,
    point: [u64; 3],
    seed: [u64; 7],
    config: [u64; 4],
}

/// The bit pattern of `value` with negative zero folded onto positive zero.
///
/// # Panics
///
/// Panics on NaN: a NaN coordinate never equals itself, so it could never be answered
/// from the cache, and it indicates an unphysical input upstream — failing loudly beats
/// silently archiving garbage.
fn key_bits(value: f64) -> u64 {
    assert!(
        !value.is_nan(),
        "NaN is not a valid simulation-cache coordinate"
    );
    // slic-lint: allow(F1) -- exact IEEE 754 `-0.0 == 0.0` is the fold being implemented; a tolerance would alias distinct coordinates.
    if value == 0.0 {
        0.0f64.to_bits()
    } else {
        value.to_bits()
    }
}

impl SimKey {
    /// Builds the key for simulating `arc` at `point` under `seed` with `config` in the
    /// technology named `tech`.
    ///
    /// # Panics
    ///
    /// Panics if any floating-point coordinate is NaN (see [`key_bits`]).
    pub fn new(
        tech: &str,
        arc: &TimingArc,
        point: &InputPoint,
        seed: &ProcessSample,
        config: &TransientConfig,
    ) -> Self {
        Self {
            kernel: KERNEL_VERSION,
            tech: tech.to_string(),
            arc: *arc,
            point: [
                key_bits(point.sin.value()),
                key_bits(point.cload.value()),
                key_bits(point.vdd.value()),
            ],
            seed: [
                key_bits(seed.delta_vth_n),
                key_bits(seed.delta_vth_p),
                key_bits(seed.vx0_scale_n),
                key_bits(seed.vx0_scale_p),
                key_bits(seed.cinv_scale),
                key_bits(seed.dibl_scale_n),
                key_bits(seed.dibl_scale_p),
            ],
            config: [
                key_bits(config.dv_max_fraction),
                config.min_steps_per_ramp as u64,
                key_bits(config.max_time_factor),
                key_bits(config.miller_fraction),
            ],
        }
    }

    /// The solver generation this key coordinates (see [`KERNEL_VERSION`]).
    pub fn kernel(&self) -> u64 {
        self.kernel
    }

    /// Returns `true` when the key was written by a kernel predating
    /// [`KERNEL_VERSION`] — such records stay loadable but can never answer a
    /// current-kernel lookup, so they are dead weight a compaction may evict.
    pub fn is_legacy_kernel(&self) -> bool {
        self.kernel < KERNEL_VERSION
    }
}

/// Renders a bit-pattern array as fixed-width hexadecimal strings.
///
/// The serde stand-in stores numbers as `f64`, which cannot represent every `u64` bit
/// pattern exactly — hex strings round-trip losslessly and keep the on-disk cache
/// diffable.  Public because the `slic-farm` wire protocol reuses the exact same
/// encoding, which is what keeps farm traffic cache-compatible with
/// [`DiskSimCache`](crate::disk::DiskSimCache) logs.
pub fn bits_to_value(bits: &[u64]) -> Value {
    Value::Array(
        bits.iter()
            .map(|b| Value::String(format!("{b:016x}")))
            .collect(),
    )
}

/// Parses a fixed-width array of hex bit patterns written by [`bits_to_value`].
///
/// # Errors
///
/// Returns a [`SerdeError`] naming `field` when the value is not an `N`-element array of
/// hex strings.
pub fn bits_from_value<const N: usize>(value: &Value, field: &str) -> Result<[u64; N], SerdeError> {
    let items = value
        .as_array()
        .ok_or_else(|| SerdeError::expected("array of hex strings", value))?;
    if items.len() != N {
        return Err(SerdeError::custom(format!(
            "field `{field}`: expected {N} hex strings, found {}",
            items.len()
        )));
    }
    let mut bits = [0u64; N];
    for (slot, item) in bits.iter_mut().zip(items) {
        let text = item
            .as_str()
            .ok_or_else(|| SerdeError::expected("hex string", item))?;
        *slot = u64::from_str_radix(text, 16).map_err(|_| {
            SerdeError::custom(format!(
                "field `{field}`: `{text}` is not a hex bit pattern"
            ))
        })?;
    }
    Ok(bits)
}

impl Serialize for SimKey {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "kernel".to_string(),
                Value::String(format!("{:x}", self.kernel)),
            ),
            ("tech".to_string(), self.tech.to_value()),
            ("arc".to_string(), self.arc.to_value()),
            ("point".to_string(), bits_to_value(&self.point)),
            ("seed".to_string(), bits_to_value(&self.seed)),
            ("config".to_string(), bits_to_value(&self.config)),
        ])
    }
}

impl Deserialize for SimKey {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| SerdeError::expected("object", value))?;
        // Records written before the kernel field existed were produced by the seed RK4
        // solver; keying them as the legacy version keeps old persisted caches loadable
        // while guaranteeing they never answer a current-kernel lookup.
        let kernel = match value.get("kernel") {
            None => LEGACY_KERNEL_VERSION,
            Some(field) => {
                let text = field
                    .as_str()
                    .ok_or_else(|| SerdeError::expected("hex kernel version", field))?;
                u64::from_str_radix(text, 16).map_err(|_| {
                    SerdeError::custom(format!("`{text}` is not a hex kernel version"))
                })?
            }
        };
        Ok(Self {
            kernel,
            tech: serde::field(entries, "tech")?,
            arc: serde::field(entries, "arc")?,
            point: bits_from_value(
                value
                    .get("point")
                    .ok_or_else(|| SerdeError::missing_field("point"))?,
                "point",
            )?,
            seed: bits_from_value(
                value
                    .get("seed")
                    .ok_or_else(|| SerdeError::missing_field("seed"))?,
                "seed",
            )?,
            config: bits_from_value(
                value
                    .get("config")
                    .ok_or_else(|| SerdeError::missing_field("config"))?,
                "config",
            )?,
        })
    }
}

/// Anything that can go wrong opening or persisting a durable simulation cache (see
/// [`DiskSimCache`](crate::disk::DiskSimCache)).
#[derive(Debug)]
pub enum CacheError {
    /// A filesystem failure reading or appending the backing store.
    Io(std::io::Error),
    /// A stored record that is not a valid cache entry.
    Corrupt {
        /// 1-based line number in the log file.
        line: usize,
        /// What failed to parse.
        message: String,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io(err) => write!(f, "cache io error: {err}"),
            CacheError::Corrupt { line, message } => {
                write!(f, "corrupt cache record at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CacheError {}

impl From<std::io::Error> for CacheError {
    fn from(err: std::io::Error) -> Self {
        Self::Io(err)
    }
}

/// A concurrent store of completed transient simulations.
///
/// Implementations must be thread-safe: the engine consults the cache from rayon worker
/// threads.  `lookup` and `store` are intentionally split (no `or_insert_with`) so a miss
/// never holds a lock across the milliseconds-long transient solve; the engine's
/// single-flight coordination prevents duplicate solves of one coordinate instead.
pub trait SimulationCache: Send + Sync {
    /// The archived measurement for `key`, if present.  Counts a hit when it answers.
    fn lookup(&self, key: &SimKey) -> Option<TimingMeasurement>;

    /// Archives a completed measurement.  Counts a miss: a store is exactly one solve
    /// that the cache could not answer.
    fn store(&self, key: SimKey, measurement: TimingMeasurement);

    /// Number of lookups answered from the cache so far.
    fn hits(&self) -> u64;

    /// Number of archived solves so far (simulations paid because the cache missed).
    fn misses(&self) -> u64;

    /// Number of hits answered by the *warm* tier: records loaded from an earlier
    /// process (e.g. a persistent cache's log) rather than solved during this run.
    /// Display-only telemetry; implementations without a warm tier report `0`.
    fn warm_hits(&self) -> u64 {
        0
    }

    /// Makes the archived state durable, for implementations that persist anything.
    ///
    /// Callers that share warm state across processes must call this (and propagate the
    /// error) before handing off — a destructor can only warn, not fail the run.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] when durable state cannot be written; purely in-memory
    /// caches never fail (the default is a no-op).
    fn persist(&self) -> Result<(), CacheError> {
        Ok(())
    }
}

const SHARDS: usize = 16;

/// A sharded in-memory [`SimulationCache`] with hit/miss accounting.
///
/// Each entry remembers which *tier* it came from: `fresh` (archived by this process,
/// via [`archive`](Self::archive)/[`store`](SimulationCache::store)) or `warm` (loaded
/// from an earlier process, via [`insert_warm`](Self::insert_warm)).  Hits are broken
/// down per tier so a post-run summary can show how much a persisted cache actually
/// saved — the tier flag never affects lookup results, only accounting.
#[derive(Debug, Default)]
pub struct InMemorySimCache {
    shards: [Mutex<BTreeMap<SimKey, (TimingMeasurement, Tier)>>; SHARDS],
    hits: AtomicU64,
    warm_hits: AtomicU64,
    misses: AtomicU64,
}

/// Which process paid for a cached measurement (see [`InMemorySimCache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    /// Solved and archived during this run.
    Fresh,
    /// Loaded from durable state written by an earlier process.
    Warm,
}

impl InMemorySimCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of archived measurements.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .len()
            })
            .sum()
    }

    /// Returns `true` when nothing is archived.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Archives a paid solve (counting the miss) and returns the previously archived
    /// measurement, if any — the building block [`store`](SimulationCache::store) and
    /// persistent wrappers share.
    pub fn archive(
        &self,
        key: SimKey,
        measurement: TimingMeasurement,
    ) -> Option<TimingMeasurement> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        // A poisoned shard only means another thread panicked mid-`insert`; the map
        // itself is never left half-written, so recover it rather than cascade.
        self.shard(&key)
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(key, (measurement, Tier::Fresh))
            .map(|(previous, _)| previous)
    }

    /// Inserts warm state **without** touching the hit/miss accounting — for loading
    /// records that were paid for by an earlier process (e.g. a persistent cache's log).
    /// Lookups answered by such records count toward [`warm_hits`](SimulationCache::warm_hits).
    pub fn insert_warm(&self, key: SimKey, measurement: TimingMeasurement) {
        self.shard(&key)
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(key, (measurement, Tier::Warm));
    }

    fn shard(&self, key: &SimKey) -> &Mutex<BTreeMap<SimKey, (TimingMeasurement, Tier)>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }
}

impl SimulationCache for InMemorySimCache {
    fn lookup(&self, key: &SimKey) -> Option<TimingMeasurement> {
        let found = self
            .shard(key)
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(key)
            .copied();
        if let Some((_, tier)) = found {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if tier == Tier::Warm {
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        found.map(|(measurement, _)| measurement)
    }

    fn store(&self, key: SimKey, measurement: TimingMeasurement) {
        let _ = self.archive(key, measurement);
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn warm_hits(&self) -> u64 {
        self.warm_hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slic_cells::{Cell, CellKind, DriveStrength, Transition};
    use slic_units::{Farads, Seconds, Volts};

    fn key(sin_ps: f64) -> SimKey {
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let point = InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(2.0),
            Volts(0.8),
        );
        SimKey::new(
            "n14",
            &arc,
            &point,
            &ProcessSample::nominal(),
            &TransientConfig::fast(),
        )
    }

    #[test]
    fn lookup_store_and_accounting() {
        let cache = InMemorySimCache::new();
        let m = TimingMeasurement::new(Seconds(1e-12), Seconds(2e-12));
        assert!(cache.lookup(&key(5.0)).is_none());
        cache.store(key(5.0), m);
        assert_eq!(cache.lookup(&key(5.0)), Some(m));
        assert!(cache.lookup(&key(6.0)).is_none());
        assert_eq!(cache.hits(), 1, "one lookup was answered");
        assert_eq!(cache.misses(), 1, "one solve was archived");
        assert_eq!(cache.warm_hits(), 0, "nothing warm was loaded");
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn warm_tier_hits_are_accounted_separately() {
        let cache = InMemorySimCache::new();
        let m = TimingMeasurement::new(Seconds(1e-12), Seconds(2e-12));
        cache.insert_warm(key(5.0), m);
        cache.store(key(6.0), m);
        assert_eq!(cache.lookup(&key(5.0)), Some(m), "warm records answer");
        assert_eq!(cache.lookup(&key(5.0)), Some(m));
        assert_eq!(cache.lookup(&key(6.0)), Some(m), "fresh records answer");
        assert_eq!(cache.hits(), 3, "every answered lookup is a hit");
        assert_eq!(cache.warm_hits(), 2, "only warm-tier answers count as warm");
        assert_eq!(cache.misses(), 1, "insert_warm never counts a miss");
        // Re-archiving a warm coordinate promotes it to the fresh tier.
        cache.store(key(5.0), m);
        assert_eq!(cache.lookup(&key(5.0)), Some(m));
        assert_eq!(
            cache.warm_hits(),
            2,
            "promoted records stop counting as warm"
        );
    }

    #[test]
    fn distinct_coordinates_do_not_alias() {
        let a = key(5.0);
        let b = key(5.000000001);
        assert_ne!(a, b, "bitwise-different points must have different keys");
    }

    #[test]
    fn negative_zero_aliases_positive_zero() {
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let point = InputPoint::new(
            Seconds::from_picoseconds(5.0),
            Farads::from_femtofarads(2.0),
            Volts(0.8),
        );
        let plus = ProcessSample {
            delta_vth_n: 0.0,
            ..ProcessSample::nominal()
        };
        let minus = ProcessSample {
            delta_vth_n: -0.0,
            ..ProcessSample::nominal()
        };
        let config = TransientConfig::fast();
        assert_eq!(
            SimKey::new("n14", &arc, &point, &plus, &config),
            SimKey::new("n14", &arc, &point, &minus, &config),
            "-0.0 and 0.0 compare equal and must share one cache slot"
        );
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_coordinates_are_rejected() {
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let point = InputPoint::new(
            Seconds::from_picoseconds(5.0),
            Farads::from_femtofarads(2.0),
            Volts(0.8),
        );
        let bad = ProcessSample {
            delta_vth_n: f64::NAN,
            ..ProcessSample::nominal()
        };
        let _ = SimKey::new("n14", &arc, &point, &bad, &TransientConfig::fast());
    }

    #[test]
    fn sim_key_round_trips_through_json() {
        let original = key(5.000000001);
        let text = serde_json::to_string(&original).expect("key serializes");
        let back: SimKey = serde_json::from_str(&text).expect("key parses");
        assert_eq!(back, original, "bit patterns must survive the round trip");
    }

    #[test]
    fn legacy_records_load_as_the_old_kernel_and_never_alias_current_keys() {
        // A record persisted before the kernel field existed: strip the field from a
        // current key's JSON, exactly as a pre-upgrade log line would look.
        let current = key(5.0);
        let text = serde_json::to_string(&current).unwrap();
        let kernel_field = format!("\"kernel\":\"{KERNEL_VERSION:x}\",");
        assert!(
            text.contains(&kernel_field),
            "current keys persist a version"
        );
        let legacy_text = text.replace(&kernel_field, "");
        let legacy: SimKey = serde_json::from_str(&legacy_text).expect("legacy record parses");
        assert_ne!(
            legacy, current,
            "a pre-upgrade record must never answer a current-kernel lookup"
        );
        // And a legacy key survives its own round trip unchanged.
        let back: SimKey = serde_json::from_str(&serde_json::to_string(&legacy).unwrap()).unwrap();
        assert_eq!(back, legacy);
    }

    #[test]
    fn sim_key_rejects_malformed_bit_patterns() {
        let text = serde_json::to_string(&key(5.0)).unwrap();
        let broken = text.replace("\"point\":[\"", "\"point\":[\"zz");
        assert!(
            serde_json::from_str::<SimKey>(&broken)
                .unwrap_err()
                .to_string()
                .contains("hex"),
            "corrupt hex must be reported"
        );
    }
}
