//! Engineering-notation formatting for physical quantities.
//!
//! Characterization reports read much better as `1.67 fF` / `5.09 ps` than as
//! `1.67e-15` / `5.09e-12`.  [`engineering`] renders a raw value with the appropriate SI
//! prefix; [`engineering_with_unit`] appends a unit symbol.

/// SI prefixes from yocto (1e-24) to yotta (1e24), one per power of a thousand.
const PREFIXES: [(f64, &str); 17] = [
    (1e24, "Y"),
    (1e21, "Z"),
    (1e18, "E"),
    (1e15, "P"),
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1e0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
    (1e-21, "z"),
    (1e-24, "y"),
];

/// Formats `value` using engineering notation with an SI prefix.
///
/// Values whose magnitude falls outside the yocto–yotta range (or that are zero, NaN or
/// infinite) fall back to plain `{}` formatting.
///
/// # Examples
///
/// ```
/// assert_eq!(slic_units::format::engineering(1.67e-15), "1.670 f");
/// assert_eq!(slic_units::format::engineering(0.0), "0");
/// ```
pub fn engineering(value: f64) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    if !value.is_finite() {
        return format!("{value}");
    }
    let magnitude = value.abs();
    for (scale, prefix) in PREFIXES {
        if magnitude >= scale {
            let scaled = value / scale;
            return if prefix.is_empty() {
                format!("{scaled:.3}")
            } else {
                format!("{scaled:.3} {prefix}")
            };
        }
    }
    format!("{value:e}")
}

/// Formats `value` in engineering notation followed by `unit`.
///
/// # Examples
///
/// ```
/// assert_eq!(slic_units::format::engineering_with_unit(5.09e-12, "s"), "5.090 ps");
/// ```
pub fn engineering_with_unit(value: f64, unit: &str) -> String {
    let body = engineering(value);
    if body.ends_with(|c: char| c.is_ascii_alphabetic()) && body.contains(' ') {
        // "5.090 p" + "s" -> "5.090 ps"
        format!("{body}{unit}")
    } else {
        format!("{body} {unit}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picoseconds_get_p_prefix() {
        assert_eq!(engineering(5.09e-12), "5.090 p");
    }

    #[test]
    fn femtofarads_get_f_prefix() {
        assert_eq!(engineering(1.67e-15), "1.670 f");
    }

    #[test]
    fn unit_scale_has_no_prefix() {
        assert_eq!(engineering(0.734), "734.000 m");
        assert_eq!(engineering(1.0), "1.000");
        assert_eq!(engineering(42.5), "42.500");
    }

    #[test]
    fn negative_values_keep_sign() {
        assert_eq!(engineering(-0.266), "-266.000 m");
    }

    #[test]
    fn zero_nan_inf_fall_back() {
        assert_eq!(engineering(0.0), "0");
        assert_eq!(engineering(f64::INFINITY), "inf");
        assert!(engineering(f64::NAN).contains("NaN"));
    }

    #[test]
    fn tiny_values_fall_back_to_scientific() {
        let s = engineering(1e-30);
        assert!(s.contains('e'), "expected scientific fallback, got {s}");
    }

    #[test]
    fn with_unit_concatenates_prefix_and_unit() {
        assert_eq!(engineering_with_unit(5.09e-12, "s"), "5.090 ps");
        assert_eq!(engineering_with_unit(1.0, "V"), "1.000 V");
        assert_eq!(engineering_with_unit(60e-6, "A"), "60.000 uA");
    }

    #[test]
    fn large_values_get_positive_prefixes() {
        assert_eq!(engineering(3.2e9), "3.200 G");
        assert_eq!(engineering(1.5e3), "1.500 k");
    }
}
