//! Pre-compiled device models for the transient hot path.
//!
//! [`Mosfet::drain_current`](crate::mosfet::Mosfet::drain_current) is evaluated millions of
//! times per characterization campaign, and most of what it computes per call is constant
//! for the lifetime of one simulation: `n·φt` and its reciprocal, `1/Vdsat`, `β` and `1/β`,
//! and the current prefactor `W·Cinv·v_x0`.  A [`CompiledDevice`] hoists those constants out
//! of the inner loop once, evaluates on raw `f64` (no unit-wrapper round-trips), and
//! replaces the two `powf` calls of the saturation function with a single `ln`/`exp` pair:
//!
//! ```text
//! Fsat = r · (1 + r^β)^(−1/β)  with  r = Vds/Vdsat
//!      = r · exp(−ln(1 + exp(β·ln r)) / β)
//! ```
//!
//! computed stably for both `r → 0` (the inner `exp` underflows to 0 and `Fsat → r`) and
//! large `r` (for `β·ln r > 30` the log-sum collapses to `β·ln r` and `Fsat → 1`).  The
//! compiled form is the *definition* of the model: [`Mosfet::drain_current`] delegates here,
//! so DC evaluations and the transient solver agree bit for bit.
//!
//! [`CompiledInverter`] pairs the pull-up and pull-down compiled devices of an equivalent
//! inverter so the transient solver's derivative callback is a single call.

use crate::mosfet::{DeviceParams, Mosfet, THERMAL_VOLTAGE};

/// A device model with all per-simulation constants hoisted, evaluated on raw `f64` volts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledDevice {
    /// Current prefactor `W·Cinv·v_x0` (A/V, multiplies the overdrive charge in volts).
    gain: f64,
    /// Threshold voltage at `Vds = 0` (V).
    vth0: f64,
    /// DIBL coefficient (V/V).
    dibl: f64,
    /// Subthreshold swing voltage `n·φt` (V).
    n_phit: f64,
    /// Reciprocal of `n·φt` (1/V).
    inv_n_phit: f64,
    /// Reciprocal of the saturation voltage (1/V).
    inv_vdsat: f64,
    /// Saturation sharpness exponent `β`.
    beta_sat: f64,
    /// Reciprocal of `β`.
    inv_beta_sat: f64,
}

impl CompiledDevice {
    /// Compiles raw device parameters.
    ///
    /// The parameters are assumed valid (see [`DeviceParams::validate`]); [`Mosfet`]
    /// guarantees this for any device it hands out.
    pub fn from_params(p: &DeviceParams) -> Self {
        let n_phit = p.ss_factor * THERMAL_VOLTAGE;
        Self {
            gain: p.width * p.cinv * p.vx0,
            vth0: p.vth0,
            dibl: p.dibl,
            n_phit,
            inv_n_phit: 1.0 / n_phit,
            inv_vdsat: 1.0 / p.vdsat,
            beta_sat: p.beta_sat,
            inv_beta_sat: 1.0 / p.beta_sat,
        }
    }

    /// Compiles a device (polarity is irrelevant: both polarities evaluate on terminal
    /// magnitudes).
    pub fn new(device: &Mosfet) -> Self {
        Self::from_params(device.params())
    }

    /// Drain current magnitude in amperes for terminal-magnitude voltages in volts.
    ///
    /// Semantics match [`Mosfet::drain_current`]: negative inputs clamp to zero (device in
    /// cut-off), `vds == 0` returns exactly zero.
    #[inline]
    pub fn drain_current(&self, vgs: f64, vds: f64) -> f64 {
        let vgs = vgs.max(0.0);
        let vds = vds.max(0.0);
        if vds == 0.0 {
            return 0.0;
        }
        // Smooth overdrive with DIBL: ln(1 + e^x) computed stably for large x.
        let vth_eff = self.vth0 - self.dibl * vds;
        let x = (vgs - vth_eff) * self.inv_n_phit;
        let q_ov = self.n_phit * if x > 30.0 { x } else { x.exp().ln_1p() };
        // Saturation function via one ln/exp pair; see the module docs for the stability
        // argument at both ends of the r range.
        let r = vds * self.inv_vdsat;
        let t = self.beta_sat * r.ln();
        let log_denom = if t > 30.0 { t } else { t.exp().ln_1p() };
        let fsat = r * (-log_denom * self.inv_beta_sat).exp();
        self.gain * q_ov * fsat
    }
}

/// The compiled pull-up/pull-down pair of an equivalent inverter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledInverter {
    pmos: CompiledDevice,
    nmos: CompiledDevice,
}

impl CompiledInverter {
    /// Compiles the two devices of an equivalent inverter.
    pub fn new(pmos: &Mosfet, nmos: &Mosfet) -> Self {
        Self {
            pmos: CompiledDevice::new(pmos),
            nmos: CompiledDevice::new(nmos),
        }
    }

    /// The compiled pull-up device.
    pub fn pmos(&self) -> &CompiledDevice {
        &self.pmos
    }

    /// The compiled pull-down device.
    pub fn nmos(&self) -> &CompiledDevice {
        &self.nmos
    }

    /// Net current charging the output node: `I_pmos − I_nmos` in amperes, for supply
    /// `vdd`, input voltage `vin` and output voltage `vout` (all in volts).
    #[inline]
    pub fn output_current(&self, vdd: f64, vin: f64, vout: f64) -> f64 {
        self.pmos.drain_current(vdd - vin, vdd - vout) - self.nmos.drain_current(vin, vout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::Mosfet;
    use proptest::prelude::*;
    use slic_units::Volts;

    fn reference_params() -> DeviceParams {
        DeviceParams {
            vth0: 0.32,
            dibl: 0.08,
            ss_factor: 1.25,
            vx0: 8.5e4,
            cinv: 1.6e-2,
            width: 2.0e-7,
            vdsat: 0.22,
            beta_sat: 1.8,
            gate_cap: 0.35e-15,
            drain_cap: 0.22e-15,
        }
    }

    /// The original (pre-compilation) drain-current expression, kept verbatim as the
    /// numerical reference for the hoisted form.
    fn drain_current_reference(p: &DeviceParams, vgs: f64, vds: f64) -> f64 {
        let vgs = vgs.max(0.0);
        let vds = vds.max(0.0);
        if vds == 0.0 {
            return 0.0;
        }
        let n_phit = p.ss_factor * THERMAL_VOLTAGE;
        let vth_eff = p.vth0 - p.dibl * vds;
        let x = (vgs - vth_eff) / n_phit;
        let q_ov = n_phit * if x > 30.0 { x } else { x.exp().ln_1p() };
        let ratio = vds / p.vdsat;
        let fsat = ratio / (1.0 + ratio.powf(p.beta_sat)).powf(1.0 / p.beta_sat);
        p.width * p.cinv * q_ov * p.vx0 * fsat
    }

    #[test]
    fn compiled_matches_reference_expression_to_rounding() {
        let p = reference_params();
        let c = CompiledDevice::from_params(&p);
        for vgs in [0.0, 0.05, 0.2, 0.32, 0.5, 0.8, 1.2] {
            for vds in [1e-6, 1e-3, 0.05, 0.22, 0.5, 0.8, 1.2] {
                let reference = drain_current_reference(&p, vgs, vds);
                let compiled = c.drain_current(vgs, vds);
                let scale = reference.abs().max(1e-30);
                assert!(
                    (compiled - reference).abs() / scale < 1e-12,
                    "vgs={vgs} vds={vds}: compiled={compiled:e} reference={reference:e}"
                );
            }
        }
    }

    #[test]
    fn mosfet_api_delegates_to_compiled_form() {
        let m = Mosfet::nmos(reference_params());
        let c = CompiledDevice::new(&m);
        for (vgs, vds) in [(0.8, 0.8), (0.4, 0.1), (0.1, 0.9), (-0.2, 0.5)] {
            assert_eq!(
                m.drain_current(Volts(vgs), Volts(vds)).value(),
                c.drain_current(vgs, vds),
                "API and compiled paths must agree bit for bit at ({vgs}, {vds})"
            );
        }
    }

    #[test]
    fn cutoff_and_zero_vds_edges() {
        let c = CompiledDevice::from_params(&reference_params());
        assert_eq!(c.drain_current(0.8, 0.0), 0.0);
        assert_eq!(c.drain_current(-1.0, 0.0), 0.0);
        assert!(c.drain_current(-1.0, 0.8) < 1e-7);
        // Deep-linear region stays finite and ~proportional to vds.
        let tiny = c.drain_current(0.8, 1e-9);
        assert!(tiny.is_finite() && tiny > 0.0);
    }

    #[test]
    fn inverter_pair_is_pmos_minus_nmos() {
        let pm = Mosfet::pmos(reference_params());
        let nm = Mosfet::nmos(reference_params());
        let inv = CompiledInverter::new(&pm, &nm);
        let (vdd, vin, vout) = (0.8, 0.3, 0.5);
        let expected =
            inv.pmos().drain_current(vdd - vin, vdd - vout) - inv.nmos().drain_current(vin, vout);
        assert_eq!(inv.output_current(vdd, vin, vout), expected);
        // Input low: pull-up wins; input high: pull-down wins.
        assert!(inv.output_current(0.8, 0.0, 0.4) > 0.0);
        assert!(inv.output_current(0.8, 0.8, 0.4) < 0.0);
    }

    proptest! {
        #[test]
        fn prop_compiled_tracks_reference(vgs in -0.5f64..1.5, vds in 0.0f64..1.5) {
            let p = reference_params();
            let c = CompiledDevice::from_params(&p);
            let reference = drain_current_reference(&p, vgs, vds);
            let compiled = c.drain_current(vgs, vds);
            let scale = reference.abs().max(1e-30);
            prop_assert!((compiled - reference).abs() / scale < 1e-11);
        }

        #[test]
        fn prop_compiled_current_finite_and_nonnegative(vgs in -1.0f64..2.0, vds in -1.0f64..2.0) {
            let c = CompiledDevice::from_params(&reference_params());
            let id = c.drain_current(vgs, vds);
            prop_assert!(id.is_finite() && id >= 0.0);
        }
    }
}
