//! The farm wire protocol: versioned JSON-lines messages between broker and worker.
//!
//! One message per line, each a JSON object with a `"type"` tag.  The conversation is a
//! strict request/response alternation on one connection:
//!
//! ```text
//! worker → broker   {"type":"hello","protocol":2,"kernel":"2","worker":"w0"}
//! broker → worker   {"type":"ping","id":3}
//! worker → broker   {"type":"pong","id":3}
//! broker → worker   {"type":"batch","id":7,"requests":[{...}, ...]}
//! worker → broker   {"type":"results","id":7,"results":[{"delay":"...","slew":"..."}, ...]}
//! broker → worker   {"type":"shutdown"}
//! ```
//!
//! `ping`/`pong` (protocol 2) is the broker-initiated heartbeat: a trivial round trip the
//! broker can run between batches with a short read deadline, so a half-open connection
//! (worker host vanished, NAT state expired) is detected in milliseconds instead of
//! stalling the next batch into its full 60 s deadline.  A `pong` echoes the `ping`'s
//! correlation id.  Protocol-1 workers do not know the pair — that is exactly why the
//! protocol version is bumped: a v1 worker is refused at connect time, as any other
//! protocol mismatch is.
//!
//! Every floating-point coordinate travels as a fixed-width hexadecimal bit pattern —
//! the exact encoding [`SimKey`](slic_spice::SimKey) uses in `DiskSimCache` logs — so a
//! request decodes to the bit-identical simulation the broker asked for, and farm
//! results are cache-compatible with local runs: the broker stores them under the same
//! keys a local solve would produce.  The handshake carries both the protocol version and
//! the transient-kernel version ([`KERNEL_VERSION`]); a worker built from a different
//! kernel generation is rejected at connect time, because its bitwise-correct-for-*its*-
//! kernel results would silently mix solver generations inside one artifact.
//!
//! NaN is rejected at both ends: it cannot be a simulation coordinate (see
//! [`SimKey`](slic_spice::SimKey)) and a NaN measurement is never produced by a valid
//! solve.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use slic_cells::{Cell, TimingArc};
use slic_device::{ProcessSample, TechnologyNode};
use slic_spice::cache::{bits_from_value, bits_to_value};
use slic_spice::{InputPoint, SimRequest, SimResult, TimingMeasurement, KERNEL_VERSION};
use slic_units::{Farads, Seconds, Volts};
use std::fmt;

/// Version of the wire protocol itself (message shapes and framing).
///
/// History: v1 = hello/batch/results/shutdown (PR 4); v2 adds the `ping`/`pong`
/// heartbeat pair.
pub const PROTOCOL_VERSION: u64 = 2;

/// Anything that can go wrong encoding, decoding or validating wire traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A line that is not valid JSON or not a known message shape.
    Malformed(String),
    /// A coordinate that cannot travel (NaN) or cannot be reconstructed.
    InvalidRequest(String),
    /// A measurement that no valid solve produces (NaN, negative delay, ...).
    InvalidResult(String),
    /// The peer speaks a different protocol version.
    ProtocolMismatch {
        /// The peer's announced worker name (who to go fix).
        worker: String,
        /// Our protocol version.
        ours: u64,
        /// The peer's protocol version.
        theirs: u64,
    },
    /// The peer runs a different transient-kernel generation.
    KernelMismatch {
        /// The peer's announced worker name (who to go fix).
        worker: String,
        /// Our kernel version.
        ours: u64,
        /// The peer's kernel version.
        theirs: u64,
    },
    /// A technology that the worker-side catalogue cannot reconstruct by name.
    UnknownTechnology(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Malformed(msg) => write!(f, "malformed wire message: {msg}"),
            WireError::InvalidRequest(msg) => write!(f, "invalid simulation request: {msg}"),
            WireError::InvalidResult(msg) => write!(f, "invalid simulation result: {msg}"),
            WireError::ProtocolMismatch {
                worker,
                ours,
                theirs,
            } => write!(
                f,
                "worker `{worker}`: protocol version mismatch: peer speaks v{theirs}, \
                 this build expects v{ours}"
            ),
            WireError::KernelMismatch {
                worker,
                ours,
                theirs,
            } => write!(
                f,
                "worker `{worker}`: transient-kernel version mismatch: peer runs kernel \
                 {theirs:#x}, this build expects kernel {ours:#x} — mixed-kernel results \
                 would silently corrupt an artifact"
            ),
            WireError::UnknownTechnology(name) => {
                write!(f, "technology `{name}` is not in the built-in catalogue")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<SerdeError> for WireError {
    fn from(err: SerdeError) -> Self {
        WireError::Malformed(err.to_string())
    }
}

/// The handshake a worker sends as its first line on every connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Wire-protocol version the worker speaks.
    pub protocol: u64,
    /// Transient-kernel generation the worker solves with.
    pub kernel: u64,
    /// Free-form worker name, for logs.
    pub worker: String,
}

impl Hello {
    /// The handshake of this build.
    pub fn current(worker: impl Into<String>) -> Self {
        Self {
            protocol: PROTOCOL_VERSION,
            kernel: KERNEL_VERSION,
            worker: worker.into(),
        }
    }

    /// Checks that the peer is compatible with this build.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError::ProtocolMismatch`] or [`WireError::KernelMismatch`] naming
    /// the offending worker plus both the observed and the expected version — a mixed
    /// fleet is debugged by reading the rejection, not by guessing which binary is stale.
    pub fn validate(&self) -> Result<(), WireError> {
        if self.protocol != PROTOCOL_VERSION {
            return Err(WireError::ProtocolMismatch {
                worker: self.worker.clone(),
                ours: PROTOCOL_VERSION,
                theirs: self.protocol,
            });
        }
        if self.kernel != KERNEL_VERSION {
            return Err(WireError::KernelMismatch {
                worker: self.worker.clone(),
                ours: KERNEL_VERSION,
                theirs: self.kernel,
            });
        }
        Ok(())
    }
}

/// One simulation request as it travels: technology by name, floats by bit pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    tech: String,
    cell: Cell,
    arc: TimingArc,
    point: [u64; 3],
    seed: [u64; 7],
    config: [u64; 4],
}

/// The bit pattern of a float that is allowed on the wire (anything but NaN).
fn checked_bits(value: f64, field: &str) -> Result<u64, WireError> {
    if value.is_nan() {
        return Err(WireError::InvalidRequest(format!(
            "field `{field}` is NaN, which is not a simulation coordinate"
        )));
    }
    Ok(value.to_bits())
}

/// Reconstructs a finite float from its wire bit pattern.
fn finite_from_bits(bits: u64, field: &str) -> Result<f64, WireError> {
    let value = f64::from_bits(bits);
    if !value.is_finite() {
        return Err(WireError::InvalidRequest(format!(
            "field `{field}` decodes to the non-finite value {value}"
        )));
    }
    Ok(value)
}

impl WireRequest {
    /// Encodes a [`SimRequest`] for transport.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError::UnknownTechnology`] when the technology is not
    /// reconstructable by name on the far side (the wire sends names, not device
    /// parameters), or a [`WireError::InvalidRequest`] on a NaN coordinate.
    pub fn encode(request: &SimRequest) -> Result<Self, WireError> {
        // The worker rebuilds the node from the catalogue; a custom node whose name does
        // not round-trip would silently simulate different device physics.
        match TechnologyNode::by_name(request.tech.name()) {
            Some(catalogued) if catalogued == *request.tech => {}
            _ => {
                return Err(WireError::UnknownTechnology(
                    request.tech.name().to_string(),
                ))
            }
        }
        Ok(Self {
            tech: request.tech.name().to_string(),
            cell: request.cell,
            arc: request.arc,
            point: [
                checked_bits(request.point.sin.value(), "point.sin")?,
                checked_bits(request.point.cload.value(), "point.cload")?,
                checked_bits(request.point.vdd.value(), "point.vdd")?,
            ],
            seed: [
                checked_bits(request.seed.delta_vth_n, "seed.delta_vth_n")?,
                checked_bits(request.seed.delta_vth_p, "seed.delta_vth_p")?,
                checked_bits(request.seed.vx0_scale_n, "seed.vx0_scale_n")?,
                checked_bits(request.seed.vx0_scale_p, "seed.vx0_scale_p")?,
                checked_bits(request.seed.cinv_scale, "seed.cinv_scale")?,
                checked_bits(request.seed.dibl_scale_n, "seed.dibl_scale_n")?,
                checked_bits(request.seed.dibl_scale_p, "seed.dibl_scale_p")?,
            ],
            config: [
                checked_bits(request.config.dv_max_fraction, "config.dv_max_fraction")?,
                request.config.min_steps_per_ramp as u64,
                checked_bits(request.config.max_time_factor, "config.max_time_factor")?,
                checked_bits(request.config.miller_fraction, "config.miller_fraction")?,
            ],
        })
    }

    /// Reconstructs the bit-identical [`SimRequest`] this wire form encodes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the technology name is unknown, a coordinate is
    /// non-finite or out of its physical range, the transient configuration fails
    /// validation, or the arc does not belong to the request's cell.
    pub fn decode(&self) -> Result<SimRequest, WireError> {
        let tech = TechnologyNode::by_name(&self.tech)
            .ok_or_else(|| WireError::UnknownTechnology(self.tech.clone()))?;
        if self.arc.cell() != self.cell {
            return Err(WireError::InvalidRequest(format!(
                "arc {} does not belong to cell {}",
                self.arc.id(),
                self.cell.name()
            )));
        }
        let sin = finite_from_bits(self.point[0], "point.sin")?;
        let cload = finite_from_bits(self.point[1], "point.cload")?;
        let vdd = finite_from_bits(self.point[2], "point.vdd")?;
        if sin <= 0.0 || cload <= 0.0 || vdd <= 0.0 {
            return Err(WireError::InvalidRequest(format!(
                "input point ({sin}, {cload}, {vdd}) has a non-positive component"
            )));
        }
        let point = InputPoint::new(Seconds(sin), Farads(cload), Volts(vdd));
        let seed = ProcessSample {
            delta_vth_n: finite_from_bits(self.seed[0], "seed.delta_vth_n")?,
            delta_vth_p: finite_from_bits(self.seed[1], "seed.delta_vth_p")?,
            vx0_scale_n: finite_from_bits(self.seed[2], "seed.vx0_scale_n")?,
            vx0_scale_p: finite_from_bits(self.seed[3], "seed.vx0_scale_p")?,
            cinv_scale: finite_from_bits(self.seed[4], "seed.cinv_scale")?,
            dibl_scale_n: finite_from_bits(self.seed[5], "seed.dibl_scale_n")?,
            dibl_scale_p: finite_from_bits(self.seed[6], "seed.dibl_scale_p")?,
        };
        let config = slic_spice::TransientConfig {
            dv_max_fraction: finite_from_bits(self.config[0], "config.dv_max_fraction")?,
            min_steps_per_ramp: usize::try_from(self.config[1]).map_err(|_| {
                WireError::InvalidRequest("config.min_steps_per_ramp overflows usize".to_string())
            })?,
            max_time_factor: finite_from_bits(self.config[2], "config.max_time_factor")?,
            miller_fraction: finite_from_bits(self.config[3], "config.miller_fraction")?,
        };
        config
            .validate()
            .map_err(|msg| WireError::InvalidRequest(format!("transient config: {msg}")))?;
        Ok(SimRequest {
            tech: std::sync::Arc::new(tech),
            cell: self.cell,
            arc: self.arc,
            point,
            seed,
            config,
        })
    }
}

impl Serialize for WireRequest {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("tech".to_string(), self.tech.to_value()),
            ("cell".to_string(), self.cell.to_value()),
            ("arc".to_string(), self.arc.to_value()),
            ("point".to_string(), bits_to_value(&self.point)),
            ("seed".to_string(), bits_to_value(&self.seed)),
            ("config".to_string(), bits_to_value(&self.config)),
        ])
    }
}

impl Deserialize for WireRequest {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| SerdeError::expected("object", value))?;
        let field_value = |name: &str| -> Result<&Value, SerdeError> {
            value
                .get(name)
                .ok_or_else(|| SerdeError::missing_field(name))
        };
        Ok(Self {
            tech: serde::field(entries, "tech")?,
            cell: serde::field(entries, "cell")?,
            arc: serde::field(entries, "arc")?,
            point: bits_from_value(field_value("point")?, "point")?,
            seed: bits_from_value(field_value("seed")?, "seed")?,
            config: bits_from_value(field_value("config")?, "config")?,
        })
    }
}

/// One lane's outcome as it travels: a hex-exact measurement or a rendered error.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResultEntry {
    /// A completed measurement, delay and slew as bit patterns.
    Measurement {
        /// Bit pattern of the delay in seconds.
        delay: u64,
        /// Bit pattern of the output slew in seconds.
        slew: u64,
    },
    /// A solver failure, rendered as text.
    Error(String),
}

impl WireResultEntry {
    /// Encodes one lane result for transport.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError::InvalidResult`] on a NaN measurement component (never
    /// produced by a valid solve).
    pub fn encode(result: &SimResult) -> Result<Self, WireError> {
        match result {
            Ok(measurement) => {
                let delay = measurement.delay.value();
                let slew = measurement.output_slew.value();
                if delay.is_nan() || slew.is_nan() {
                    return Err(WireError::InvalidResult(
                        "NaN measurement component".to_string(),
                    ));
                }
                Ok(Self::Measurement {
                    delay: delay.to_bits(),
                    slew: slew.to_bits(),
                })
            }
            Err(message) => Ok(Self::Error(message.clone())),
        }
    }

    /// Reconstructs the bit-identical [`SimResult`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError::InvalidResult`] when the bit patterns violate the
    /// measurement invariants (finite, non-negative delay, positive slew).
    pub fn decode(&self) -> Result<SimResult, WireError> {
        match self {
            Self::Measurement { delay, slew } => {
                let delay = f64::from_bits(*delay);
                let slew = f64::from_bits(*slew);
                if !(delay.is_finite() && delay >= 0.0 && slew.is_finite() && slew > 0.0) {
                    return Err(WireError::InvalidResult(format!(
                        "measurement (delay {delay}, slew {slew}) violates the timing \
                         invariants"
                    )));
                }
                Ok(Ok(TimingMeasurement::new(Seconds(delay), Seconds(slew))))
            }
            Self::Error(message) => Ok(Err(message.clone())),
        }
    }
}

impl Serialize for WireResultEntry {
    fn to_value(&self) -> Value {
        match self {
            Self::Measurement { delay, slew } => Value::Object(vec![
                ("delay".to_string(), Value::String(format!("{delay:016x}"))),
                ("slew".to_string(), Value::String(format!("{slew:016x}"))),
            ]),
            Self::Error(message) => {
                Value::Object(vec![("error".to_string(), Value::String(message.clone()))])
            }
        }
    }
}

impl Deserialize for WireResultEntry {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        if let Some(error) = value.get("error") {
            let message = error
                .as_str()
                .ok_or_else(|| SerdeError::expected("error string", error))?;
            return Ok(Self::Error(message.to_string()));
        }
        let hex = |name: &str| -> Result<u64, SerdeError> {
            let field = value
                .get(name)
                .ok_or_else(|| SerdeError::missing_field(name))?;
            let text = field
                .as_str()
                .ok_or_else(|| SerdeError::expected("hex bit pattern", field))?;
            u64::from_str_radix(text, 16).map_err(|_| {
                SerdeError::custom(format!("field `{name}`: `{text}` is not a hex bit pattern"))
            })
        };
        Ok(Self::Measurement {
            delay: hex("delay")?,
            slew: hex("slew")?,
        })
    }
}

/// Every message that travels on a farm connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker handshake (first line of every connection).
    Hello(Hello),
    /// A broker-assigned batch of simulation requests.
    Batch {
        /// Broker-chosen correlation id, echoed in the response.
        id: u64,
        /// The lanes to solve, in order.
        requests: Vec<WireRequest>,
    },
    /// The worker's results for one batch, in request order.
    Results {
        /// The correlation id of the batch being answered.
        id: u64,
        /// One entry per request.
        results: Vec<WireResultEntry>,
    },
    /// Broker-initiated heartbeat probe (protocol 2): "are you still there?".
    Ping {
        /// Broker-chosen correlation id, echoed in the pong.
        id: u64,
    },
    /// The worker's heartbeat answer, echoing the ping's id.
    Pong {
        /// The correlation id of the ping being answered.
        id: u64,
    },
    /// Orderly termination: the worker exits its serve loop.
    Shutdown,
}

/// Renders a message as its single JSON line (no trailing newline).
///
/// # Panics
///
/// Never in practice: every numeric field is a small integer and every float travels as a
/// hex string, so the JSON writer cannot encounter a non-finite number.
pub fn encode_message(message: &Message) -> String {
    let value = match message {
        Message::Hello(hello) => Value::Object(vec![
            ("type".to_string(), Value::String("hello".to_string())),
            ("protocol".to_string(), hello.protocol.to_value()),
            (
                "kernel".to_string(),
                Value::String(format!("{:x}", hello.kernel)),
            ),
            ("worker".to_string(), hello.worker.to_value()),
        ]),
        Message::Batch { id, requests } => Value::Object(vec![
            ("type".to_string(), Value::String("batch".to_string())),
            ("id".to_string(), id.to_value()),
            ("requests".to_string(), requests.to_value()),
        ]),
        Message::Results { id, results } => Value::Object(vec![
            ("type".to_string(), Value::String("results".to_string())),
            ("id".to_string(), id.to_value()),
            ("results".to_string(), results.to_value()),
        ]),
        Message::Ping { id } => Value::Object(vec![
            ("type".to_string(), Value::String("ping".to_string())),
            ("id".to_string(), id.to_value()),
        ]),
        Message::Pong { id } => Value::Object(vec![
            ("type".to_string(), Value::String("pong".to_string())),
            ("id".to_string(), id.to_value()),
        ]),
        Message::Shutdown => Value::Object(vec![(
            "type".to_string(),
            Value::String("shutdown".to_string()),
        )]),
    };
    // slic-lint: allow(P1) -- structural: every float crosses the wire as a hex bit pattern (see WireRequest), so Value serialization cannot fail.
    serde_json::to_string(&value).expect("wire messages contain no non-finite numbers")
}

/// Parses one wire line into a message.
///
/// # Errors
///
/// Returns a [`WireError::Malformed`] for anything that is not a known message shape.
pub fn decode_message(line: &str) -> Result<Message, WireError> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| WireError::Malformed(e.to_string()))?;
    let entries = value
        .as_object()
        .ok_or_else(|| WireError::Malformed("message is not an object".to_string()))?;
    let kind = value
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::Malformed("message has no `type` tag".to_string()))?;
    match kind {
        "hello" => {
            let kernel_field = value
                .get("kernel")
                .ok_or_else(|| WireError::Malformed("hello has no `kernel`".to_string()))?;
            let kernel_text = kernel_field
                .as_str()
                .ok_or_else(|| WireError::Malformed("hello `kernel` is not hex".to_string()))?;
            let kernel = u64::from_str_radix(kernel_text, 16).map_err(|_| {
                WireError::Malformed(format!("`{kernel_text}` is not a hex kernel version"))
            })?;
            Ok(Message::Hello(Hello {
                protocol: serde::field(entries, "protocol")?,
                kernel,
                worker: serde::field(entries, "worker")?,
            }))
        }
        "batch" => Ok(Message::Batch {
            id: serde::field(entries, "id")?,
            requests: serde::field(entries, "requests")?,
        }),
        "results" => Ok(Message::Results {
            id: serde::field(entries, "id")?,
            results: serde::field(entries, "results")?,
        }),
        "ping" => Ok(Message::Ping {
            id: serde::field(entries, "id")?,
        }),
        "pong" => Ok(Message::Pong {
            id: serde::field(entries, "id")?,
        }),
        "shutdown" => Ok(Message::Shutdown),
        other => Err(WireError::Malformed(format!(
            "unknown message type `{other}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slic_cells::{CellKind, DriveStrength, Transition};
    use slic_spice::TransientConfig;

    fn request() -> SimRequest {
        let cell = Cell::new(CellKind::Nand2, DriveStrength::X2);
        SimRequest {
            tech: std::sync::Arc::new(TechnologyNode::n14_finfet()),
            cell,
            arc: TimingArc::new(cell, 0, Transition::Rise),
            point: InputPoint::new(
                Seconds::from_picoseconds(5.000000001),
                Farads::from_femtofarads(2.0),
                Volts(0.8),
            ),
            seed: ProcessSample {
                delta_vth_n: 0.013,
                ..ProcessSample::nominal()
            },
            config: TransientConfig::fast(),
        }
    }

    #[test]
    fn request_round_trips_bit_exactly_through_a_message() {
        let original = request();
        let wire = WireRequest::encode(&original).expect("encodes");
        let line = encode_message(&Message::Batch {
            id: 7,
            requests: vec![wire],
        });
        let Message::Batch { id, requests } = decode_message(&line).expect("decodes") else {
            panic!("wrong message type");
        };
        assert_eq!(id, 7);
        assert_eq!(requests.len(), 1);
        assert_eq!(requests[0].decode().expect("reconstructs"), original);
    }

    #[test]
    fn nan_coordinates_are_rejected_at_encode_time() {
        let mut bad = request();
        bad.seed.delta_vth_p = f64::NAN;
        let err = WireRequest::encode(&bad).expect_err("NaN must not travel");
        assert!(err.to_string().contains("NaN"), "{err}");
    }

    #[test]
    fn kernel_and_protocol_mismatches_are_rejected() {
        assert!(Hello::current("w").validate().is_ok());
        let stale_kernel = Hello {
            kernel: KERNEL_VERSION + 1,
            ..Hello::current("rack7-w3")
        };
        let err = stale_kernel.validate().expect_err("stale kernel rejected");
        assert!(matches!(err, WireError::KernelMismatch { .. }));
        let rendered = err.to_string();
        // Mixed-fleet debugging: the rejection must name the worker and both versions.
        assert!(rendered.contains("rack7-w3"), "{rendered}");
        assert!(
            rendered.contains(&format!("{KERNEL_VERSION:#x}")),
            "{rendered}"
        );
        assert!(
            rendered.contains(&format!("{:#x}", KERNEL_VERSION + 1)),
            "{rendered}"
        );
        let stale_protocol = Hello {
            protocol: PROTOCOL_VERSION + 1,
            ..Hello::current("rack7-w3")
        };
        let err = stale_protocol
            .validate()
            .expect_err("stale protocol rejected");
        assert!(matches!(err, WireError::ProtocolMismatch { .. }));
        let rendered = err.to_string();
        assert!(rendered.contains("rack7-w3"), "{rendered}");
        assert!(
            rendered.contains(&format!("v{PROTOCOL_VERSION}")),
            "{rendered}"
        );
        assert!(
            rendered.contains(&format!("v{}", PROTOCOL_VERSION + 1)),
            "{rendered}"
        );
    }

    #[test]
    fn ping_and_pong_round_trip() {
        for message in [Message::Ping { id: 41 }, Message::Pong { id: 41 }] {
            let line = encode_message(&message);
            assert_eq!(decode_message(&line).expect("decodes"), message);
        }
        // A v1 peer has never heard of the pair — the version bump is what keeps it out
        // of a v2 fleet at connect time rather than at the first unanswerable ping.
        assert_eq!(PROTOCOL_VERSION, 2);
    }

    #[test]
    fn hello_round_trips() {
        let hello = Hello::current("worker-3");
        let line = encode_message(&Message::Hello(hello.clone()));
        assert_eq!(
            decode_message(&line).expect("decodes"),
            Message::Hello(hello)
        );
    }

    #[test]
    fn result_entries_round_trip_and_enforce_invariants() {
        let ok: SimResult = Ok(TimingMeasurement::new(Seconds(1.25e-12), Seconds(2.5e-12)));
        let err: SimResult = Err("transition incomplete".to_string());
        for result in [&ok, &err] {
            let entry = WireResultEntry::encode(result).expect("encodes");
            let line = encode_message(&Message::Results {
                id: 3,
                results: vec![entry],
            });
            let Message::Results { results, .. } = decode_message(&line).expect("decodes") else {
                panic!("wrong message type");
            };
            assert_eq!(&results[0].decode().expect("reconstructs"), result);
        }
        // A negative delay can be *encoded* (it is not NaN) but must fail decode: the
        // far side would panic constructing the measurement otherwise.
        let negative = WireResultEntry::Measurement {
            delay: (-1.0f64).to_bits(),
            slew: 1.0f64.to_bits(),
        };
        assert!(negative.decode().is_err());
    }

    #[test]
    fn malformed_lines_are_rejected_with_context() {
        assert!(decode_message("{").is_err());
        assert!(decode_message("42").is_err());
        assert!(decode_message("{\"type\":\"warp\"}").is_err());
        assert!(decode_message("{\"id\":1}").is_err());
    }

    #[test]
    fn shutdown_round_trips() {
        let line = encode_message(&Message::Shutdown);
        assert_eq!(decode_message(&line).expect("decodes"), Message::Shutdown);
    }
}
