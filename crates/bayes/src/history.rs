//! Archive of historical library characterizations.
//!
//! A [`HistoricalRecord`] is what survives of a past technology's characterization once the
//! expensive simulations are done: the extracted compact-model parameters for one
//! (cell, arc, metric) and the relative residuals of that fit at a set of reference input
//! conditions.  The prior learner consumes the parameters; the precision learner consumes
//! the residuals.

use serde::{Deserialize, Serialize};
use slic_spice::InputPoint;
use slic_timing_model::TimingParams;
use std::fmt;

/// Which timing quantity a record (or prior, or extraction) refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TimingMetric {
    /// Propagation delay `Td`.
    Delay,
    /// Output transition time `Sout`.
    OutputSlew,
}

impl TimingMetric {
    /// Both metrics, in the order they are characterized.
    pub const BOTH: [TimingMetric; 2] = [TimingMetric::Delay, TimingMetric::OutputSlew];
}

impl fmt::Display for TimingMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingMetric::Delay => f.write_str("delay"),
            TimingMetric::OutputSlew => f.write_str("output-slew"),
        }
    }
}

/// The relative residual of a historical fit at one reference input condition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConditionResidual {
    /// The reference input condition.
    pub point: InputPoint,
    /// `(observed − predicted)/observed` of the historical fit at that condition.
    pub relative_residual: f64,
}

/// One archived fit from a historical technology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoricalRecord {
    /// Name of the technology the fit came from.
    pub tech_name: String,
    /// Feature size of that technology in nanometres.
    pub node_nm: u32,
    /// Cell name (e.g. `"NAND2_X1"`).
    pub cell_name: String,
    /// Timing-arc identifier (e.g. `"NAND2_X1/A0/FALL"`).
    pub arc_id: String,
    /// Which quantity the parameters model.
    pub metric: TimingMetric,
    /// The extracted compact-model parameters.
    pub params: TimingParams,
    /// Mean absolute relative fitting error of the historical extraction, in percent.
    pub fit_error_percent: f64,
    /// Relative residuals at the reference input conditions (used for precision learning).
    pub residuals: Vec<ConditionResidual>,
}

impl HistoricalRecord {
    /// Creates a record.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        tech_name: impl Into<String>,
        node_nm: u32,
        cell_name: impl Into<String>,
        arc_id: impl Into<String>,
        metric: TimingMetric,
        params: TimingParams,
        fit_error_percent: f64,
        residuals: Vec<ConditionResidual>,
    ) -> Self {
        Self {
            tech_name: tech_name.into(),
            node_nm,
            cell_name: cell_name.into(),
            arc_id: arc_id.into(),
            metric,
            params,
            fit_error_percent,
            residuals,
        }
    }

    /// The cell kind prefix of the cell name (text before the drive suffix), e.g. `"NAND2"`.
    pub fn cell_kind_name(&self) -> &str {
        self.cell_name.split('_').next().unwrap_or(&self.cell_name)
    }
}

/// A collection of historical records with query helpers and JSON persistence.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistoricalDatabase {
    records: Vec<HistoricalRecord>,
}

impl HistoricalDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a record.
    pub fn push(&mut self, record: HistoricalRecord) {
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[HistoricalRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the database holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Names of the distinct technologies represented, in first-appearance order.
    pub fn technology_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for r in &self.records {
            if !names.contains(&r.tech_name.as_str()) {
                names.push(&r.tech_name);
            }
        }
        names
    }

    /// Records for one metric, optionally restricted to one cell kind (matched on the cell
    /// name prefix, e.g. `"NAND2"`).
    pub fn select(&self, metric: TimingMetric, cell_kind: Option<&str>) -> Vec<&HistoricalRecord> {
        self.records
            .iter()
            .filter(|r| r.metric == metric)
            .filter(|r| cell_kind.is_none_or(|k| r.cell_kind_name() == k))
            .collect()
    }

    /// Records restricted to a subset of technologies (by name) — the "selection of a group
    /// of historical libraries" step of the paper's bias–variance discussion.
    pub fn select_technologies(&self, tech_names: &[&str]) -> Self {
        Self {
            records: self
                .records
                .iter()
                .filter(|r| tech_names.contains(&r.tech_name.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Merges another database into this one.
    pub fn merge(&mut self, other: HistoricalDatabase) {
        self.records.extend(other.records);
    }

    /// Serializes the database to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error if serialization fails (it cannot for this
    /// data model, but the signature is honest).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Restores a database from its JSON representation.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl FromIterator<HistoricalRecord> for HistoricalDatabase {
    fn from_iter<T: IntoIterator<Item = HistoricalRecord>>(iter: T) -> Self {
        Self {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<HistoricalRecord> for HistoricalDatabase {
    fn extend<T: IntoIterator<Item = HistoricalRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slic_units::{Farads, Seconds, Volts};

    fn record(tech: &str, cell: &str, metric: TimingMetric, kd: f64) -> HistoricalRecord {
        let point = InputPoint::new(
            Seconds::from_picoseconds(5.0),
            Farads::from_femtofarads(2.0),
            Volts(0.8),
        );
        HistoricalRecord::new(
            tech,
            28,
            cell,
            format!("{cell}/A0/FALL"),
            metric,
            TimingParams::new(kd, 1.0, -0.25, 0.08),
            1.5,
            vec![ConditionResidual {
                point,
                relative_residual: 0.01,
            }],
        )
    }

    #[test]
    fn metric_display_and_listing() {
        assert_eq!(format!("{}", TimingMetric::Delay), "delay");
        assert_eq!(TimingMetric::BOTH.len(), 2);
    }

    #[test]
    fn cell_kind_prefix_extraction() {
        let r = record("t", "NAND2_X1", TimingMetric::Delay, 0.4);
        assert_eq!(r.cell_kind_name(), "NAND2");
        let r = record("t", "INV", TimingMetric::Delay, 0.4);
        assert_eq!(r.cell_kind_name(), "INV");
    }

    #[test]
    fn database_push_select_and_names() {
        let mut db = HistoricalDatabase::new();
        assert!(db.is_empty());
        db.push(record("n45", "INV_X1", TimingMetric::Delay, 0.40));
        db.push(record("n45", "NAND2_X1", TimingMetric::Delay, 0.37));
        db.push(record("n28", "INV_X1", TimingMetric::Delay, 0.39));
        db.push(record("n28", "INV_X1", TimingMetric::OutputSlew, 1.1));
        assert_eq!(db.len(), 4);
        assert_eq!(db.technology_names(), vec!["n45", "n28"]);
        assert_eq!(db.select(TimingMetric::Delay, None).len(), 3);
        assert_eq!(db.select(TimingMetric::Delay, Some("INV")).len(), 2);
        assert_eq!(db.select(TimingMetric::OutputSlew, None).len(), 1);
        assert_eq!(db.select(TimingMetric::Delay, Some("NOR2")).len(), 0);
    }

    #[test]
    fn technology_subset_selection() {
        let db: HistoricalDatabase = [
            record("n45", "INV_X1", TimingMetric::Delay, 0.40),
            record("n28", "INV_X1", TimingMetric::Delay, 0.39),
            record("n14", "INV_X1", TimingMetric::Delay, 0.38),
        ]
        .into_iter()
        .collect();
        let subset = db.select_technologies(&["n45", "n14"]);
        assert_eq!(subset.len(), 2);
        assert_eq!(subset.technology_names(), vec!["n45", "n14"]);
    }

    #[test]
    fn merge_and_extend() {
        let mut a: HistoricalDatabase = [record("n45", "INV_X1", TimingMetric::Delay, 0.40)]
            .into_iter()
            .collect();
        let b: HistoricalDatabase = [record("n28", "INV_X1", TimingMetric::Delay, 0.39)]
            .into_iter()
            .collect();
        a.merge(b);
        assert_eq!(a.len(), 2);
        a.extend([record("n20", "INV_X1", TimingMetric::Delay, 0.38)]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn json_round_trip() {
        let db: HistoricalDatabase = [
            record("n45", "INV_X1", TimingMetric::Delay, 0.40),
            record("n28", "NOR2_X1", TimingMetric::OutputSlew, 1.05),
        ]
        .into_iter()
        .collect();
        let json = db.to_json().unwrap();
        assert!(json.contains("NOR2_X1"));
        let back = HistoricalDatabase::from_json(&json).unwrap();
        assert_eq!(db, back);
        assert!(HistoricalDatabase::from_json("not json").is_err());
    }
}
