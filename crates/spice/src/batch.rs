//! Batched transient integration: many simulation lanes advanced through one kernel.
//!
//! A Monte Carlo ensemble integrates the *same* arc at the *same* input point under many
//! process seeds, and a sweep integrates the same arc and seed at many input points.  Both
//! are embarrassingly lane-parallel, and both pay per-simulation setup (equivalent-inverter
//! reduction, model compilation, threshold tables) that a scalar loop re-derives from
//! scratch each time.  The batched kernel pre-compiles every lane's
//! [`TransientProblem`](crate::transient) once, keeps the live lane states packed in a
//! dense worklist, and advances all unretired lanes one accepted step per round — the
//! integrator's working set stays hot in cache and retired lanes stop costing anything
//! (per-lane retirement: lanes finish at their own pace, the round only visits survivors).
//!
//! Every lane executes exactly the arithmetic of the scalar kernel — the batch and scalar
//! paths drive the same [`LaneState::step`](crate::transient) — so batch lane `i` is
//! **bitwise identical** to the scalar simulation of the same `(equivalent inverter,
//! point)` pair.  The parity suite asserts this.

use crate::input::InputPoint;
use crate::measure::TimingMeasurement;
use crate::transient::{
    LaneState, TransientConfig, TransientError, TransientProblem, TransientStats,
};
use slic_cells::{EquivalentInverter, TimingArc};

/// Per-lane outcome of a batched integration with stats: the measurement and its work
/// counters, or the lane's own integration failure.
pub type LaneResult = Result<(TimingMeasurement, TransientStats), TransientError>;

/// Integrates a set of pre-built problems, all lanes in one worklist.
///
/// Result `i` corresponds to `problems[i]` regardless of the order lanes retire in.
pub(crate) fn integrate_batch(problems: &[TransientProblem]) -> Vec<LaneResult> {
    let mut lanes: Vec<LaneState> = problems.iter().map(LaneState::new).collect();
    // Dense worklist of unretired lane indices; retirement swap-removes, so each round
    // touches only live lanes.
    let mut live: Vec<usize> = (0..problems.len()).collect();
    while !live.is_empty() {
        let mut i = 0;
        while i < live.len() {
            let lane = live[i];
            lanes[lane].step(&problems[lane]);
            if lanes[lane].finished() {
                live.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
    lanes
        .into_iter()
        .zip(problems)
        .map(|(lane, problem)| lane.into_result(problem))
        .collect()
}

/// Monte Carlo batch: simulates `arc` at one input point for every equivalent inverter in
/// `lanes` (one per process seed), returning per-lane results in input order.
///
/// Lane `i` is bitwise identical to
/// [`simulate_switching`](crate::transient::simulate_switching) on `lanes[i]`.
///
/// # Errors
///
/// Returns [`TransientError::InvalidConfig`] if `config` fails validation; per-lane
/// integration failures ([`TransientError::IncompleteTransition`]) are reported in the
/// corresponding output slot without disturbing the other lanes.
pub fn simulate_switching_batch(
    lanes: &[EquivalentInverter],
    arc: &TimingArc,
    point: &InputPoint,
    config: &TransientConfig,
) -> Result<Vec<Result<TimingMeasurement, TransientError>>, TransientError> {
    simulate_switching_batch_with_stats(lanes, arc, point, config)
        .map(|rs| rs.into_iter().map(|r| r.map(|(m, _)| m)).collect())
}

/// [`simulate_switching_batch`] plus per-lane integration-work counters.
///
/// # Errors
///
/// Same conditions as [`simulate_switching_batch`].
pub fn simulate_switching_batch_with_stats(
    lanes: &[EquivalentInverter],
    arc: &TimingArc,
    point: &InputPoint,
    config: &TransientConfig,
) -> Result<Vec<LaneResult>, TransientError> {
    config.validate().map_err(TransientError::InvalidConfig)?;
    let problems: Vec<TransientProblem> = lanes
        .iter()
        .map(|eq| TransientProblem::new(eq, arc, point, config))
        .collect();
    Ok(integrate_batch(&problems))
}

/// Sweep batch: simulates `arc` with one equivalent inverter at every input point,
/// returning per-point results in input order.
///
/// Lane `i` is bitwise identical to
/// [`simulate_switching`](crate::transient::simulate_switching) at `points[i]`.
///
/// # Errors
///
/// Same conditions as [`simulate_switching_batch`].
pub fn simulate_switching_sweep_batch(
    eq: &EquivalentInverter,
    arc: &TimingArc,
    points: &[InputPoint],
    config: &TransientConfig,
) -> Result<Vec<Result<TimingMeasurement, TransientError>>, TransientError> {
    config.validate().map_err(TransientError::InvalidConfig)?;
    let problems: Vec<TransientProblem> = points
        .iter()
        .map(|point| TransientProblem::new(eq, arc, point, config))
        .collect();
    Ok(integrate_batch(&problems)
        .into_iter()
        .map(|r| r.map(|(m, _)| m))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::simulate_switching;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slic_cells::{Cell, CellKind, DriveStrength, Transition};
    use slic_device::TechnologyNode;
    use slic_units::{Farads, Seconds, Volts};

    fn pt(sin_ps: f64, cload_ff: f64, vdd: f64) -> InputPoint {
        InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(cload_ff),
            Volts(vdd),
        )
    }

    #[test]
    fn batch_lanes_match_scalar_bitwise() {
        let tech = TechnologyNode::n14_finfet();
        let cell = Cell::new(CellKind::Nand2, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let mut rng = StdRng::seed_from_u64(17);
        let seeds = tech.variation().sample_n(&mut rng, 24);
        let lanes: Vec<EquivalentInverter> = seeds
            .iter()
            .map(|s| EquivalentInverter::build(&tech, cell, s))
            .collect();
        let point = pt(5.0, 2.0, 0.8);
        let cfg = TransientConfig::fast();
        let batch = simulate_switching_batch(&lanes, &arc, &point, &cfg).unwrap();
        assert_eq!(batch.len(), lanes.len());
        for (eq, result) in lanes.iter().zip(&batch) {
            let scalar = simulate_switching(eq, &arc, &point, &cfg).unwrap();
            let batched = result.clone().unwrap();
            assert_eq!(
                batched.delay.value().to_bits(),
                scalar.delay.value().to_bits()
            );
            assert_eq!(
                batched.output_slew.value().to_bits(),
                scalar.output_slew.value().to_bits()
            );
        }
    }

    #[test]
    fn sweep_batch_matches_scalar_bitwise() {
        let tech = TechnologyNode::n14_finfet();
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Rise);
        let eq = EquivalentInverter::nominal(&tech, cell);
        let points = vec![pt(1.0, 0.5, 0.7), pt(5.0, 2.0, 0.8), pt(12.0, 4.0, 1.0)];
        let cfg = TransientConfig::accurate();
        let batch = simulate_switching_sweep_batch(&eq, &arc, &points, &cfg).unwrap();
        for (point, result) in points.iter().zip(&batch) {
            let scalar = simulate_switching(&eq, &arc, point, &cfg).unwrap();
            assert_eq!(result.clone().unwrap(), scalar);
        }
    }

    #[test]
    fn per_lane_failures_do_not_poison_the_batch() {
        let tech = TechnologyNode::n14_finfet();
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let eq = EquivalentInverter::nominal(&tech, cell);
        // A sub-threshold supply lane between two healthy lanes.
        let points = vec![pt(5.0, 2.0, 0.8), pt(5.0, 2.0, 0.02), pt(5.0, 2.0, 0.9)];
        let cfg = TransientConfig::fast();
        let batch = simulate_switching_sweep_batch(&eq, &arc, &points, &cfg).unwrap();
        assert!(batch[0].is_ok());
        assert!(matches!(
            batch[1],
            Err(TransientError::IncompleteTransition { .. })
        ));
        assert!(batch[2].is_ok());
    }

    #[test]
    fn invalid_config_rejected_before_any_lane_runs() {
        let tech = TechnologyNode::n14_finfet();
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let eq = EquivalentInverter::nominal(&tech, cell);
        let bad = TransientConfig {
            min_steps_per_ramp: 2,
            ..TransientConfig::fast()
        };
        let err = simulate_switching_batch(&[eq], &arc, &pt(5.0, 2.0, 0.8), &bad).unwrap_err();
        assert!(matches!(err, TransientError::InvalidConfig(_)));
    }

    #[test]
    fn empty_batch_is_fine() {
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let batch =
            simulate_switching_batch(&[], &arc, &pt(5.0, 2.0, 0.8), &TransientConfig::fast())
                .unwrap();
        assert!(batch.is_empty());
    }
}
