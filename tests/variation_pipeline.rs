//! End-to-end test of the Monte Carlo variation subsystem: a statistical
//! characterization run produces sigma/skew tables next to the nominal fits, shard-split
//! plus merge reproduces the single-process artifact bit-for-bit, reruns replay from the
//! cache, the report renders the variation section, and the Liberty export grows
//! LVF-style `ocv_*` groups that parse back.

use slic::liberty::scan_liberty_tables;
use slic_pipeline::{
    CharacterizationPlan, PipelineRunner, RunArtifact, RunConfig, UnitKind, VariationKnobs,
};
use slic_spice::DiskSimCache;
use std::path::PathBuf;
use std::sync::Arc;

fn variation_config() -> RunConfig {
    RunConfig {
        seed: Some(99),
        variation: Some(VariationKnobs {
            process_seeds: Some(6),
            sigma_corners: Some(vec![1.0, 3.0]),
        }),
        ..RunConfig::default()
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("slic-variation-test-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn statistical_run_produces_moment_tables_and_lvf_export() {
    let resolved = variation_config().resolve().expect("config resolves");
    let runner = PipelineRunner::new(resolved).expect("runner builds");
    let plan = CharacterizationPlan::from_config(runner.config()).expect("non-empty plan");
    // 12 nominal units + 12 Monte Carlo units (3 cells x 2 arcs x 2 metrics).
    assert_eq!(plan.len(), 24);

    let database = runner.learn().database;
    let artifact = runner
        .characterize(&plan, &database)
        .expect("statistical run completes");
    assert_eq!(artifact.units.len(), 24);
    let variation = artifact.variation.as_ref().expect("variation section");
    assert_eq!(variation.process_seeds, 6);
    assert_eq!(variation.tables.len(), 12, "one table per arc and metric");
    let grid = runner.config().export_grid;
    for table in &variation.tables {
        assert_eq!(table.shape(), (grid.slew_levels, grid.load_levels));
        assert!(table.mean.iter().flatten().all(|m| *m > 0.0));
        assert!(
            table.sigma.iter().flatten().all(|s| *s > 0.0),
            "process variation must spread every grid point"
        );
    }
    // Monte Carlo units report a spread, request grid x seeds transients, and the
    // delay/slew pair of one arc shares its sweeps through the cache: the run pays at
    // most one sweep per arc (6 arcs x 9 points x 6 seeds unique coordinates).
    let mc_units: Vec<_> = artifact
        .units
        .iter()
        .filter(|u| u.kind == UnitKind::MonteCarlo)
        .collect();
    assert_eq!(mc_units.len(), 12);
    for unit in &mc_units {
        assert_eq!(
            unit.requested_simulations,
            (grid.slew_levels * grid.load_levels * 6) as u64
        );
        assert!(unit.error_percent > 0.0, "spread must be positive");
        assert!(unit.params.is_none());
    }
    assert!(
        artifact.cache_hits >= 6 * 9 * 6,
        "each arc's second-metric Monte Carlo unit must replay the first's transients \
         (hits = {})",
        artifact.cache_hits
    );

    // The report renders the variation tables instead of omitting them.
    let report = artifact.summary_markdown();
    assert!(report.contains("## Process variation (6 seeds"));
    assert!(report.contains("monte-carlo"));
    assert!(report.contains("worst µ+3σ (ps)"));
    assert!(report.contains("µ / σ / γ per slew × load point"));

    // Liberty with variation: ocv sigma/skew groups on the nominal grid, parsing back.
    let text = artifact
        .characterized
        .to_liberty_with_variation(runner.engine(), grid, variation)
        .expect("LVF export succeeds");
    let tables = scan_liberty_tables(&text).expect("export parses back");
    for group in [
        "ocv_sigma_cell_rise",
        "ocv_sigma_cell_fall",
        "ocv_skewness_cell_rise",
        "ocv_skewness_cell_fall",
        "ocv_sigma_rise_transition",
        "ocv_skewness_fall_transition",
    ] {
        let scanned = tables
            .iter()
            .find(|t| t.group == group)
            .unwrap_or_else(|| panic!("missing `{group}`"));
        assert_eq!(
            (scanned.rows, scanned.cols),
            (grid.slew_levels, grid.load_levels),
            "`{group}` must share the nominal index grid"
        );
    }
    // Every cell's timing group carries the full LVF complement: 2 nominal + 4 ocv
    // tables per transition.
    let ocv_count = tables
        .iter()
        .filter(|t| t.group.starts_with("ocv_"))
        .count();
    assert_eq!(ocv_count, 3 * 2 * 4);
}

#[test]
fn four_variation_shards_merged_are_bit_identical_to_the_single_process_run() {
    let resolved = variation_config().resolve().expect("config resolves");
    let learn_runner = PipelineRunner::new(resolved.clone()).expect("runner builds");
    let database = learn_runner.learn().database;

    // Single-process reference with a fresh runner (counter covers characterization
    // only), exactly like the sharded workers below.
    let single = PipelineRunner::new(resolved.clone()).expect("runner builds");
    let plan = CharacterizationPlan::from_config(single.config()).expect("non-empty plan");
    let reference = single
        .characterize(&plan, &database)
        .expect("reference run completes");
    assert_eq!(
        reference.total_simulations, reference.cache_misses,
        "every unique (seed, point) coordinate is paid exactly once"
    );

    let dir = temp_dir("merge");
    let cache_path = dir.join("sim-cache.jsonl");
    let shards = plan.split(4).expect("plan splits");
    let mut artifacts = Vec::new();
    for shard in &shards {
        let cache = Arc::new(DiskSimCache::open(&cache_path).expect("cache opens"));
        let runner =
            PipelineRunner::with_cache(resolved.clone(), cache.clone()).expect("runner builds");
        let artifact = runner
            .characterize(shard, &database)
            .expect("shard run completes");
        // Every shard echoes the full ensemble configuration, so merge can verify the
        // shards describe one seed set.
        let section = artifact
            .variation
            .as_ref()
            .expect("every shard has a section");
        assert_eq!(section.process_seeds, 6);
        assert_eq!(
            section.tables.len(),
            shard
                .units()
                .iter()
                .filter(|u| u.kind == UnitKind::MonteCarlo)
                .count()
        );
        cache.flush().expect("cache flushes");
        artifacts.push(artifact);
    }

    let merged = RunArtifact::merge(&artifacts).expect("shards merge");
    // Bit-for-bit: the merged artifact serializes to exactly the single-process bytes —
    // fits, moment tables, and cost totals included (the shards shared one disk cache, so
    // each unique coordinate was paid once somewhere).
    assert_eq!(
        merged.to_json().expect("serializes"),
        reference.to_json().expect("serializes"),
    );

    // A warm rerun of the full statistical plan replays entirely from the shard cache.
    let warm_cache = Arc::new(DiskSimCache::open(&cache_path).expect("cache reopens"));
    let warm = PipelineRunner::with_cache(resolved.clone(), warm_cache).expect("runner builds");
    let replay = warm
        .characterize(&plan, &database)
        .expect("warm rerun completes");
    assert_eq!(
        replay.total_simulations, 0,
        "zero transients on a warm cache"
    );
    assert_eq!(replay.cache_misses, 0);
    assert_eq!(
        replay.variation.as_ref().expect("section").tables,
        merged.variation.as_ref().expect("section").tables,
        "replayed moment tables are identical"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exported_liberty_file_from_env_parses_back() {
    // CI hook: the variation smoke job exports a .lib via the CLI and points this test at
    // it, so the on-disk artifact goes through the same round-trip helper as the
    // in-process exports.  A no-op when the variable is unset (normal test runs).
    let Ok(path) = std::env::var("SLIC_SCAN_LIB") else {
        return;
    };
    let text = std::fs::read_to_string(&path).expect("exported library readable");
    let tables = scan_liberty_tables(&text).expect("CLI export parses back");
    let nominal_shape = tables
        .iter()
        .find(|t| t.group == "cell_rise")
        .map(|t| (t.rows, t.cols))
        .expect("nominal tables present");
    for group in ["ocv_sigma_cell_rise", "ocv_skewness_cell_fall"] {
        let scanned = tables
            .iter()
            .find(|t| t.group == group)
            .unwrap_or_else(|| panic!("missing `{group}` in {path}"));
        assert_eq!((scanned.rows, scanned.cols), nominal_shape);
    }
}

#[test]
fn shard_artifacts_with_variation_units_are_labelled_partial() {
    let resolved = variation_config().resolve().expect("config resolves");
    let runner = PipelineRunner::new(resolved).expect("runner builds");
    let plan = CharacterizationPlan::from_config(runner.config()).expect("non-empty plan");
    let database = runner.learn().database;
    let shard = plan
        .split(4)
        .expect("plan splits")
        .into_iter()
        .find(|s| s.units().iter().any(|u| u.kind == UnitKind::MonteCarlo))
        .expect("some shard owns Monte Carlo units");
    let artifact = runner
        .characterize(&shard, &database)
        .expect("shard run completes");
    assert!(
        artifact.is_partial(),
        "a shard of a statistical plan is partial (variation units count too)"
    );
    let report = artifact.summary_markdown();
    assert!(report.contains("PARTIAL SHARD ARTIFACT"), "{report}");
    assert!(
        report.contains("## Process variation"),
        "a statistical shard report still renders its own tables"
    );
}
