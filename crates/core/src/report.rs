//! Small table formatters shared by the examples and the benchmark harness.

/// Renders a Markdown table.
///
/// # Panics
///
/// Panics if any row has a different number of columns than the header.
pub fn markdown_table(headers: &[String], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(
            row.len(),
            headers.len(),
            "every row must have one cell per header"
        );
    }
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str(" --- |");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Renders a CSV table (comma-separated, `"` quoting for cells containing commas or quotes).
///
/// # Panics
///
/// Panics if any row has a different number of columns than the header.
pub fn csv_table(headers: &[String], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(
            row.len(),
            headers.len(),
            "every row must have one cell per header"
        );
    }
    let quote = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Formats a series of `(x, y)` pairs as aligned two-column text, for quick plotting of
/// figure data in a terminal.
pub fn series_text(name: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("# {name}\n");
    for (x, y) in points {
        out.push_str(&format!("{x:>14.6e}  {y:>14.6e}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn headers() -> Vec<String> {
        vec!["k".to_string(), "error (%)".to_string()]
    }

    #[test]
    fn markdown_structure() {
        let table = markdown_table(
            &headers(),
            &[
                vec!["2".to_string(), "4.3".to_string()],
                vec!["5".to_string(), "2.1".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| k |"));
        assert!(lines[1].contains("---"));
        assert!(lines[3].contains("2.1"));
    }

    #[test]
    #[should_panic(expected = "one cell per header")]
    fn ragged_rows_rejected() {
        let _ = markdown_table(&headers(), &[vec!["2".to_string()]]);
    }

    #[test]
    fn csv_quoting() {
        let table = csv_table(
            &["name".to_string(), "value".to_string()],
            &[vec!["a,b".to_string(), "say \"hi\"".to_string()]],
        );
        assert!(table.contains("\"a,b\""));
        assert!(table.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn series_formatting() {
        let text = series_text("fig2", &[(0.65, 1.0e-14), (1.0, 1.1e-14)]);
        assert!(text.starts_with("# fig2"));
        assert_eq!(text.lines().count(), 3);
    }
}
