//! Library-scale characterization in ~20 lines: configure, plan, learn, characterize,
//! export — the programmatic equivalent of
//! `slic characterize --liberty library.lib`.
//!
//! Run with `cargo run --release --example library_pipeline`.

use slic_pipeline::{CharacterizationPlan, PipelineRunner, RunConfig};

fn main() {
    // Defaults: paper trio, target 14-nm node, two historical FinFET nodes, quick profile.
    let config = RunConfig::default()
        .resolve()
        .expect("default config resolves");
    let runner = PipelineRunner::new(config).expect("quick profile is valid");

    let plan = CharacterizationPlan::from_config(runner.config()).expect("non-empty plan");
    println!(
        "plan: {} work units over {} arcs\n",
        plan.len(),
        plan.arcs().len()
    );

    let (learning, artifact) = runner.run().expect("pipeline completes");
    println!(
        "historical learning: {} records in {} simulations",
        learning.database.len(),
        learning.simulation_cost
    );
    println!("{}", artifact.summary_markdown());

    let liberty = artifact
        .characterized
        .to_liberty(runner.engine(), runner.config().export_grid)
        .expect("fitted arcs exist");
    println!(
        "liberty export: {} lines, zero additional simulations",
        liberty.lines().count()
    );
}
