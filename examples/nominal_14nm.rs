//! Fig. 6 reproduction at example scale: nominal delay characterization of a 14-nm library.
//!
//! Compares "Proposed Model + Bayesian Inference", "Proposed Model + LSE" and the lookup
//! table on the target 14-nm technology, as a function of the number of training
//! simulations, and reports the simulation-count speedup at matched accuracy.
//!
//! Run with `cargo run --release --example nominal_14nm`.

use slic::historical::{HistoricalLearner, HistoricalLearningConfig};
use slic::nominal::{MethodKind, NominalStudy, NominalStudyConfig};
use slic::prelude::*;

fn main() {
    let library = Library::paper_trio();
    println!("learning priors from the historical technology suite...");
    let learning = HistoricalLearner::new(HistoricalLearningConfig::default())
        .learn(&TechnologyNode::historical_suite(), &library);
    println!(
        "  {} records, {} simulations spent on historical nodes\n",
        learning.database.len(),
        learning.simulation_cost
    );

    let config = NominalStudyConfig {
        validation_points: 300,
        training_counts: vec![1, 2, 3, 5, 10, 20, 50],
        ..NominalStudyConfig::default()
    };
    let study = NominalStudy::new(TechnologyNode::target_14nm(), &learning.database, config);

    for kind in [CellKind::Inv, CellKind::Nand2, CellKind::Nor2] {
        let cell = Cell::new(kind, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        println!("=== {} / delay (Fig. 6 analogue) ===", arc.id());
        let result = study.run(cell, &arc, TimingMetric::Delay);
        println!("{}", result.to_markdown());

        let bayes_final = result.curve(MethodKind::ProposedBayesian).final_error();
        let target = bayes_final.max(result.curve(MethodKind::Lut).final_error());
        if let Some(speedup) =
            result.speedup_at(target, MethodKind::ProposedBayesian, MethodKind::Lut)
        {
            println!("speedup vs LUT at {target:.2}% accuracy: {speedup:.1}x");
        }
        if let Some(speedup) = result.speedup_at(target, MethodKind::ProposedLse, MethodKind::Lut) {
            println!("  of which the compact model alone contributes: {speedup:.1}x");
        }
        if let Some(speedup) = result.speedup_at(
            target,
            MethodKind::ProposedBayesian,
            MethodKind::ProposedLse,
        ) {
            println!("  and the Bayesian prior contributes another: {speedup:.1}x");
        }
        println!(
            "baseline cost for this arc: {} simulations\n",
            result.baseline_simulations
        );
    }
}
