//! Process-variation model and Monte Carlo seeds.
//!
//! Statistical library characterization needs an ensemble of "process seeds": each seed is
//! one realization of the manufacturing variation of a die, and simulating the same cell at
//! the same input condition across seeds yields the delay / slew distributions that the
//! paper's statistical flow reconstructs.
//!
//! The model used here separates, per polarity, a **global** (inter-die) component shared
//! by every device of that polarity and a **local** (mismatch) component drawn per device
//! family.  Four parameters are perturbed: threshold voltage (additive, the dominant term),
//! injection velocity, inversion capacitance and DIBL (all multiplicative).  This mirrors
//! the dominant variation sources of real FinFET/planar kits at the level of fidelity the
//! characterization experiments need.

use crate::mosfet::{DeviceParams, Polarity};
use rand::Rng;
use rand_distr::{Distribution, StandardNormal};
use serde::{Deserialize, Serialize};

/// Magnitudes (1σ) of the variation sources of a technology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessVariation {
    /// Global threshold-voltage variation (V, additive).
    pub vth_sigma_global: f64,
    /// Local (mismatch) threshold-voltage variation (V, additive).
    pub vth_sigma_local: f64,
    /// Relative injection-velocity variation (fraction, multiplicative).
    pub vx0_sigma_frac: f64,
    /// Relative inversion-capacitance variation (fraction, multiplicative).
    pub cinv_sigma_frac: f64,
    /// Relative DIBL variation (fraction, multiplicative).
    pub dibl_sigma_frac: f64,
}

impl ProcessVariation {
    /// Creates a variation description.
    ///
    /// # Panics
    ///
    /// Panics if any σ is negative or any relative σ is ≥ 1 (a full standard deviation must
    /// not be able to drive a multiplicative parameter negative in the linearized model).
    pub fn new(
        vth_sigma_global: f64,
        vth_sigma_local: f64,
        vx0_sigma_frac: f64,
        cinv_sigma_frac: f64,
        dibl_sigma_frac: f64,
    ) -> Self {
        assert!(
            vth_sigma_global >= 0.0 && vth_sigma_local >= 0.0,
            "vth sigmas must be non-negative"
        );
        assert!(
            (0.0..1.0).contains(&vx0_sigma_frac)
                && (0.0..1.0).contains(&cinv_sigma_frac)
                && (0.0..1.0).contains(&dibl_sigma_frac),
            "relative sigmas must be in [0, 1)"
        );
        Self {
            vth_sigma_global,
            vth_sigma_local,
            vx0_sigma_frac,
            cinv_sigma_frac,
            dibl_sigma_frac,
        }
    }

    /// A variation model with every σ set to zero (useful for nominal-only flows).
    pub fn none() -> Self {
        Self {
            vth_sigma_global: 0.0,
            vth_sigma_local: 0.0,
            vx0_sigma_frac: 0.0,
            cinv_sigma_frac: 0.0,
            dibl_sigma_frac: 0.0,
        }
    }

    /// Total threshold-voltage σ (global and local added in quadrature).
    pub fn vth_sigma_total(&self) -> f64 {
        (self.vth_sigma_global.powi(2) + self.vth_sigma_local.powi(2)).sqrt()
    }

    /// Draws one process seed.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ProcessSample {
        let mut normal = || -> f64 { StandardNormal.sample(rng) };
        let global_vth = normal();
        let global_vx0 = normal();
        let global_cinv = normal();
        ProcessSample {
            delta_vth_n: global_vth * self.vth_sigma_global + normal() * self.vth_sigma_local,
            delta_vth_p: global_vth * self.vth_sigma_global + normal() * self.vth_sigma_local,
            vx0_scale_n: (1.0 + global_vx0 * self.vx0_sigma_frac).max(0.05),
            vx0_scale_p: (1.0 + (0.7 * global_vx0 + 0.3 * normal()) * self.vx0_sigma_frac)
                .max(0.05),
            cinv_scale: (1.0 + global_cinv * self.cinv_sigma_frac).max(0.05),
            dibl_scale_n: (1.0 + normal() * self.dibl_sigma_frac).max(0.0),
            dibl_scale_p: (1.0 + normal() * self.dibl_sigma_frac).max(0.0),
        }
    }

    /// Draws `n` process seeds.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<ProcessSample> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

impl Default for ProcessVariation {
    fn default() -> Self {
        // Representative of an advanced planar/FinFET node.
        Self::new(0.018, 0.012, 0.05, 0.02, 0.08)
    }
}

/// One realization of process variation — a "seed" of the Monte Carlo flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessSample {
    /// Additive NMOS threshold shift (V).
    pub delta_vth_n: f64,
    /// Additive PMOS threshold shift (V).
    pub delta_vth_p: f64,
    /// Multiplicative NMOS injection-velocity scale.
    pub vx0_scale_n: f64,
    /// Multiplicative PMOS injection-velocity scale.
    pub vx0_scale_p: f64,
    /// Multiplicative inversion-capacitance scale (shared by both polarities — it tracks
    /// gate-stack thickness which is common to NMOS and PMOS).
    pub cinv_scale: f64,
    /// Multiplicative NMOS DIBL scale.
    pub dibl_scale_n: f64,
    /// Multiplicative PMOS DIBL scale.
    pub dibl_scale_p: f64,
}

impl ProcessSample {
    /// The nominal (no-variation) sample.
    pub fn nominal() -> Self {
        Self {
            delta_vth_n: 0.0,
            delta_vth_p: 0.0,
            vx0_scale_n: 1.0,
            vx0_scale_p: 1.0,
            cinv_scale: 1.0,
            dibl_scale_n: 1.0,
            dibl_scale_p: 1.0,
        }
    }

    /// Applies the seed to nominal device parameters of the given polarity.
    ///
    /// The threshold floor of 1 mV keeps the perturbed device physically valid even for
    /// extreme (>5σ) draws.
    pub fn apply(&self, nominal: &DeviceParams, polarity: Polarity) -> DeviceParams {
        let (dvth, vx0_scale, dibl_scale) = match polarity {
            Polarity::Nmos => (self.delta_vth_n, self.vx0_scale_n, self.dibl_scale_n),
            Polarity::Pmos => (self.delta_vth_p, self.vx0_scale_p, self.dibl_scale_p),
        };
        DeviceParams {
            vth0: (nominal.vth0 + dvth).max(1e-3),
            dibl: (nominal.dibl * dibl_scale).clamp(0.0, 0.49),
            vx0: nominal.vx0 * vx0_scale,
            cinv: nominal.cinv * self.cinv_scale,
            ..nominal.clone()
        }
    }

    /// Returns `true` if this is exactly the nominal sample.
    pub fn is_nominal(&self) -> bool {
        *self == Self::nominal()
    }
}

impl Default for ProcessSample {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::Mosfet;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slic_units::Volts;

    fn nominal_device() -> DeviceParams {
        DeviceParams {
            vth0: 0.32,
            dibl: 0.08,
            ss_factor: 1.25,
            vx0: 8.5e4,
            cinv: 1.6e-2,
            width: 2.0e-7,
            vdsat: 0.22,
            beta_sat: 1.8,
            gate_cap: 0.35e-15,
            drain_cap: 0.22e-15,
        }
    }

    #[test]
    fn nominal_sample_is_identity() {
        let seed = ProcessSample::nominal();
        assert!(seed.is_nominal());
        let dev = seed.apply(&nominal_device(), Polarity::Nmos);
        assert_eq!(dev, nominal_device());
    }

    #[test]
    fn default_sample_is_nominal() {
        assert!(ProcessSample::default().is_nominal());
    }

    #[test]
    fn sampled_seeds_have_expected_spread() {
        let var = ProcessVariation::default();
        let mut rng = StdRng::seed_from_u64(101);
        let seeds = var.sample_n(&mut rng, 4000);
        let dvth: Vec<f64> = seeds.iter().map(|s| s.delta_vth_n).collect();
        let mean = slic_mean(&dvth);
        let sd = slic_std(&dvth);
        assert!(mean.abs() < 2e-3, "mean = {mean}");
        let expected = var.vth_sigma_total();
        assert!((sd - expected).abs() / expected < 0.1, "sd = {sd}");
    }

    #[test]
    fn nmos_and_pmos_thresholds_are_correlated_but_not_identical() {
        let var = ProcessVariation::default();
        let mut rng = StdRng::seed_from_u64(5);
        let seeds = var.sample_n(&mut rng, 4000);
        let n: Vec<f64> = seeds.iter().map(|s| s.delta_vth_n).collect();
        let p: Vec<f64> = seeds.iter().map(|s| s.delta_vth_p).collect();
        let corr = slic_corr(&n, &p);
        assert!(corr > 0.3 && corr < 0.99, "corr = {corr}");
    }

    #[test]
    fn applying_positive_vth_shift_reduces_current() {
        let base = Mosfet::nmos(nominal_device());
        let mut seed = ProcessSample::nominal();
        seed.delta_vth_n = 0.05;
        let slow = Mosfet::nmos(seed.apply(&nominal_device(), Polarity::Nmos));
        assert!(slow.ieff(Volts(0.8)).value() < base.ieff(Volts(0.8)).value());
    }

    #[test]
    fn zero_variation_produces_nominal_seeds() {
        let var = ProcessVariation::none();
        let mut rng = StdRng::seed_from_u64(1);
        let seed = var.sample(&mut rng);
        assert!((seed.delta_vth_n).abs() < 1e-15);
        assert!((seed.vx0_scale_n - 1.0).abs() < 1e-15);
        assert!((seed.cinv_scale - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "relative sigmas")]
    fn invalid_relative_sigma_rejected() {
        let _ = ProcessVariation::new(0.01, 0.01, 1.5, 0.02, 0.05);
    }

    #[test]
    fn extreme_seed_still_produces_valid_device() {
        let mut seed = ProcessSample::nominal();
        seed.delta_vth_n = -0.5; // would push vth negative without the floor
        seed.dibl_scale_n = 10.0; // would exceed the dibl cap without the clamp
        let dev = seed.apply(&nominal_device(), Polarity::Nmos);
        assert!(dev.validate().is_ok());
    }

    fn slic_mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    fn slic_std(v: &[f64]) -> f64 {
        let m = slic_mean(v);
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (v.len() - 1) as f64).sqrt()
    }

    fn slic_corr(a: &[f64], b: &[f64]) -> f64 {
        let ma = slic_mean(a);
        let mb = slic_mean(b);
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let da: f64 = a.iter().map(|x| (x - ma).powi(2)).sum::<f64>().sqrt();
        let db: f64 = b.iter().map(|x| (x - mb).powi(2)).sum::<f64>().sqrt();
        num / (da * db)
    }

    proptest! {
        #[test]
        fn prop_applied_devices_always_validate(seed in 0u64..500) {
            let var = ProcessVariation::default();
            let mut rng = StdRng::seed_from_u64(seed);
            let s = var.sample(&mut rng);
            let n = s.apply(&nominal_device(), Polarity::Nmos);
            let p = s.apply(&nominal_device(), Polarity::Pmos);
            prop_assert!(n.validate().is_ok());
            prop_assert!(p.validate().is_ok());
        }

        #[test]
        fn prop_scales_stay_positive(seed in 0u64..500) {
            let var = ProcessVariation::new(0.05, 0.05, 0.3, 0.3, 0.3);
            let mut rng = StdRng::seed_from_u64(seed);
            let s = var.sample(&mut rng);
            prop_assert!(s.vx0_scale_n > 0.0);
            prop_assert!(s.vx0_scale_p > 0.0);
            prop_assert!(s.cinv_scale > 0.0);
            prop_assert!(s.dibl_scale_n >= 0.0);
        }
    }
}
