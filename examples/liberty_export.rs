//! Characterize a small library and emit a Liberty-flavoured `.lib` file.
//!
//! This is the "what do I actually ship to the STA tool" end of the flow: the standard
//! library is characterized at the technology's nominal supply on a 4×4 slew/load grid and
//! written to `target/slic_target14_example.lib`.
//!
//! Run with `cargo run --release --example liberty_export`.

use slic::liberty::{export_library, ExportGrid};
use slic::prelude::*;
use std::fs;
use std::path::Path;

fn main() {
    let tech = TechnologyNode::target_14nm();
    let engine = CharacterizationEngine::with_config(tech.clone(), TransientConfig::fast())
        .expect("valid transient configuration");
    let library = Library::new(
        "shipping-subset",
        [
            Cell::new(CellKind::Inv, DriveStrength::X1),
            Cell::new(CellKind::Inv, DriveStrength::X2),
            Cell::new(CellKind::Nand2, DriveStrength::X1),
            Cell::new(CellKind::Nor2, DriveStrength::X1),
            Cell::new(CellKind::Aoi21, DriveStrength::X1),
        ],
    );

    println!(
        "characterizing {} cells of {} at Vdd = {} ...",
        library.len(),
        tech.name(),
        tech.vdd_nominal()
    );
    let text = export_library(&engine, &library, ExportGrid::default()).expect("non-empty library");
    println!(
        "done: {} simulations, {} lines of Liberty output",
        engine.simulation_count(),
        text.lines().count()
    );

    let out_path = Path::new("target").join("slic_target14_example.lib");
    match fs::write(&out_path, &text) {
        Ok(()) => println!("written to {}", out_path.display()),
        Err(err) => println!(
            "could not write {} ({err}); printing instead",
            out_path.display()
        ),
    }

    // Show the head of the file so the run is useful even without opening the output.
    println!("\n--- first 40 lines ---");
    for line in text.lines().take(40) {
        println!("{line}");
    }
}
