//! Pipeline error type.

use std::fmt;

/// Anything that can go wrong preparing or running a characterization pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// An invalid or inconsistent run configuration (unknown names, empty selections,
    /// malformed config text).
    Config(String),
    /// An invalid transient-solver configuration, surfaced from the engine.
    Engine(slic_spice::ConfigError),
    /// A Liberty export that cannot produce a valid file (empty selection, bad grid).
    Export(slic::liberty::ExportError),
    /// A persistent simulation cache that cannot be opened or flushed.
    Cache(slic_spice::CacheError),
    /// A filesystem failure while loading or persisting artifacts.
    Io(std::io::Error),
    /// A JSON (de)serialization failure on an artifact or database file.
    Serde(serde_json::Error),
}

impl PipelineError {
    /// Convenience constructor for configuration errors.
    pub fn config(message: impl Into<String>) -> Self {
        Self::Config(message.into())
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Config(msg) => write!(f, "configuration error: {msg}"),
            PipelineError::Engine(err) => write!(f, "engine error: {err}"),
            PipelineError::Export(err) => write!(f, "export error: {err}"),
            PipelineError::Cache(err) => write!(f, "simulation cache error: {err}"),
            PipelineError::Io(err) => write!(f, "io error: {err}"),
            PipelineError::Serde(err) => write!(f, "serialization error: {err}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<slic_spice::ConfigError> for PipelineError {
    fn from(err: slic_spice::ConfigError) -> Self {
        Self::Engine(err)
    }
}

impl From<slic::liberty::ExportError> for PipelineError {
    fn from(err: slic::liberty::ExportError) -> Self {
        Self::Export(err)
    }
}

impl From<slic_spice::CacheError> for PipelineError {
    fn from(err: slic_spice::CacheError) -> Self {
        Self::Cache(err)
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(err: std::io::Error) -> Self {
        Self::Io(err)
    }
}

impl From<serde_json::Error> for PipelineError {
    fn from(err: serde_json::Error) -> Self {
        Self::Serde(err)
    }
}
