//! End-to-end integration test of the statistical characterization flow (Figs. 7–9):
//! per-seed MAP extraction from a handful of conditions must reconstruct the delay / slew
//! statistics that the full Monte Carlo baseline measures.

use slic::historical::{HistoricalLearner, HistoricalLearningConfig};
use slic::nominal::MethodKind;
use slic::prelude::*;
use slic::statistical::{StatMetric, StatisticalStudy, StatisticalStudyConfig};

fn learned_database() -> HistoricalDatabase {
    let config = HistoricalLearningConfig {
        grid_levels: (3, 3, 2),
        transient: TransientConfig::fast(),
    };
    HistoricalLearner::new(config)
        .learn(
            &[TechnologyNode::n28_bulk(), TechnologyNode::n32_soi()],
            &Library::paper_trio(),
        )
        .database
}

#[test]
fn statistical_moments_are_reconstructed_from_few_conditions() {
    let db = learned_database();
    let config = StatisticalStudyConfig {
        validation_points: 25,
        process_seeds: 40,
        training_counts: vec![3, 10],
        ..StatisticalStudyConfig::default()
    };
    let study = StatisticalStudy::new(TechnologyNode::target_28nm(), &db, config);
    let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let result = study.run(cell, &arc);

    let bayes = result.curves_for(MethodKind::ProposedBayesian);
    let lut = result.curves_for(MethodKind::Lut);

    // Mean reconstruction is accurate already at 3 conditions per seed.
    assert!(
        bayes.mean_delay_error[0] < 10.0,
        "mean delay err = {}",
        bayes.mean_delay_error[0]
    );
    assert!(
        bayes.mean_slew_error[0] < 12.0,
        "mean slew err = {}",
        bayes.mean_slew_error[0]
    );
    // Sigma reconstruction is harder but must stay bounded and improve (or hold) with more
    // conditions.
    assert!(bayes.std_delay_error[0] < 60.0);
    assert!(bayes.std_delay_error[1] <= bayes.std_delay_error[0] + 10.0);
    // The proposed method beats a 3-condition statistical LUT on the mean metrics.
    assert!(bayes.mean_delay_error[0] < lut.mean_delay_error[0]);
    assert!(bayes.mean_slew_error[0] < lut.mean_slew_error[0]);
    // Cost accounting: per-k cost is k x seeds for the model methods.
    assert_eq!(bayes.simulations[0], 3 * 40);
    assert_eq!(result.baseline_simulations, 25 * 40);

    // Speedup helper produces a finite ratio for the mean-delay metric.
    let target = lut.as_method_curve(StatMetric::MeanDelay).final_error();
    let speedup = result.speedup_at(
        StatMetric::MeanDelay,
        target,
        MethodKind::ProposedBayesian,
        MethodKind::Lut,
    );
    if let Some(s) = speedup {
        assert!(
            s >= 1.0,
            "speedup should favour the proposed method, got {s}"
        );
    }
}

#[test]
fn low_vdd_delay_pdf_is_right_skewed_and_reconstructed() {
    let db = learned_database();
    let config = StatisticalStudyConfig {
        validation_points: 10,
        process_seeds: 80,
        training_counts: vec![3],
        ..StatisticalStudyConfig::default()
    };
    let study = StatisticalStudy::new(TechnologyNode::target_28nm(), &db, config);
    let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let corner = InputPoint::new(
        Seconds::from_picoseconds(5.09),
        Farads::from_femtofarads(1.67),
        Volts(0.734),
    );
    let pdf = study.delay_pdf(cell, &arc, corner, 7, 12);

    // Near-threshold operation skews the delay distribution to the right (slow tail), the
    // Fig. 9 effect: the low-Vdd distribution is clearly more skewed than the same arc at
    // nominal supply.
    let low_vdd_skew = pdf.baseline_skewness();
    assert!(
        low_vdd_skew > 0.1,
        "expected right skew at low Vdd, got {low_vdd_skew}"
    );
    // Deterministic check of the same mechanism, free of Monte Carlo noise: a +1σ threshold
    // shift slows the cell down by more than a −1σ shift speeds it up (convexity of delay in
    // Vth), and the asymmetry is stronger at the low-Vdd corner than at nominal supply.
    let engine = study.engine();
    let sigma = engine.tech().variation().vth_sigma_total();
    let asymmetry = |vdd: f64| -> f64 {
        let probe = InputPoint::new(
            Seconds::from_picoseconds(5.09),
            Farads::from_femtofarads(1.67),
            Volts(vdd),
        );
        let delay_at = |shift: f64| {
            let mut seed = ProcessSample::nominal();
            seed.delta_vth_n = shift;
            seed.delta_vth_p = shift;
            engine.simulate(cell, &arc, &probe, &seed).delay.value()
        };
        let slow = delay_at(sigma);
        let nominal = delay_at(0.0);
        let fast = delay_at(-sigma);
        (slow - nominal) - (nominal - fast)
    };
    let low_vdd_asymmetry = asymmetry(0.734);
    let nominal_vdd_asymmetry = asymmetry(1.05);
    assert!(
        low_vdd_asymmetry > 0.0,
        "delay must be convex in Vth near threshold"
    );
    assert!(
        low_vdd_asymmetry > nominal_vdd_asymmetry,
        "non-Gaussianity must grow as Vdd drops ({low_vdd_asymmetry} vs {nominal_vdd_asymmetry})"
    );
    // The proposed reconstruction tracks the baseline closely seed-by-seed and preserves the
    // skew sign.
    assert!(pdf.proposed_error_percent() < 15.0);
    let proposed_skew = Summary::from_samples(&pdf.proposed).skewness;
    assert!(proposed_skew > 0.0, "proposed skew = {proposed_skew}");
    // The spread of the reconstruction matches the baseline to within a third.
    let base = Summary::from_samples(&pdf.baseline);
    let prop = Summary::from_samples(&pdf.proposed);
    assert!((prop.std_dev - base.std_dev).abs() / base.std_dev < 0.35);
}
