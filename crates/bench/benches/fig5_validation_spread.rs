//! Fig. 5: the 1000-point random validation spread over the input space
//! `ξ = (Sin, Cload, Vdd)` used to score every characterization method.
//!
//! The regenerated scatter is summarized (per-axis coverage and uniformity); Criterion
//! times the sampling itself.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use slic::prelude::*;
use slic_bench::banner;
use slic_stats::moments;

fn regenerate() -> (InputSpace, Vec<InputPoint>) {
    banner(
        "Fig. 5",
        "1000 random validation points over the (Sin, Cload, Vdd) input space of the 14-nm node",
    );
    let tech = TechnologyNode::target_14nm();
    let space = InputSpace::paper_space(tech.vdd_range());
    let mut rng = StdRng::seed_from_u64(20150313);
    let points = space.sample_uniform(&mut rng, 1000);

    let axis = |label: &str, values: Vec<f64>, lo: f64, hi: f64, unit: &str, scale: f64| {
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = moments::mean(&values);
        println!(
            "  {label:<6} range [{:.2}, {:.2}] {unit}, sampled [{:.2}, {:.2}], mean {:.2}, expected mean {:.2}",
            lo * scale,
            hi * scale,
            min * scale,
            max * scale,
            mean * scale,
            0.5 * (lo + hi) * scale
        );
    };
    println!("{} points:", points.len());
    let (slo, shi) = space.sin_range();
    axis(
        "Sin",
        points.iter().map(|p| p.sin.value()).collect(),
        slo.value(),
        shi.value(),
        "ps",
        1e12,
    );
    let (clo, chi) = space.cload_range();
    axis(
        "Cload",
        points.iter().map(|p| p.cload.value()).collect(),
        clo.value(),
        chi.value(),
        "fF",
        1e15,
    );
    let (vlo, vhi) = space.vdd_range();
    axis(
        "Vdd",
        points.iter().map(|p| p.vdd.value()).collect(),
        vlo.value(),
        vhi.value(),
        "V",
        1.0,
    );

    // Uniformity check: each octant of the box holds roughly 1/8 of the points.
    let center = space.center();
    let mut octants = [0usize; 8];
    for p in &points {
        let idx = (usize::from(p.sin > center.sin) << 2)
            | (usize::from(p.cload > center.cload) << 1)
            | usize::from(p.vdd > center.vdd);
        octants[idx] += 1;
    }
    println!("  octant occupancy (expected ~125 each): {octants:?}");
    println!("(paper: Fig. 5 shows the same uniformly scattered 1000-point cloud)");
    (space, points)
}

fn bench(c: &mut Criterion) {
    let (space, _) = regenerate();
    c.bench_function("fig5_sample_1000_validation_points", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            space.sample_uniform(&mut rng, 1000)
        })
    });
}

criterion_group! {
    name = benches;
    config = slic_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
