//! SPICE-class transient simulation of standard-cell switching events.
//!
//! The paper uses HSPICE with industrial BSIM design kits as its ground-truth oracle: given
//! a cell, an input slew, a load capacitance, a supply voltage and a process corner, the
//! oracle returns the propagation delay `Td` and the output transition time `Sout`.  This
//! crate is the from-scratch substitute: it integrates the nonlinear ODE of the cell's
//! equivalent inverter driving its load, using the virtual-source device model from
//! [`slic_device`].
//!
//! The crate is organized as follows:
//!
//! * [`input`] — the library input space `ξ = (Sin, Cload, Vdd)`: the [`InputPoint`] type,
//!   the [`InputSpace`] box and its sampling plans (uniform, Latin hypercube, LUT grid);
//! * [`measure`] — waveform threshold definitions and the [`TimingMeasurement`] result;
//! * [`transient`] — the adaptive-step transient solver for a single switching event
//!   (embedded-error Bogacki–Shampine kernel, plus the seed RK4 kept as golden reference);
//! * [`batch`] — the batched Monte Carlo kernel: many lanes integrated through one
//!   worklist, each bitwise identical to its scalar counterpart;
//! * [`backend`] — the [`SimulationBackend`] boundary: where a batch of solves actually
//!   executes ([`LocalBackend`] in-process; the `slic-farm` crate adds remote workers);
//! * [`engine`] — the "simulator front-end": a [`CharacterizationEngine`] bound to one
//!   technology that runs (and counts) simulations, sweeps and Monte Carlo ensembles, in
//!   the role of the paper's SPICE + `.ALTER` + Monte Carlo flow.
//!
//! Simulation counting matters: every speedup the paper reports is a ratio of *simulation
//! counts* needed to reach equal accuracy, so [`engine::SimulationCounter`] is threaded
//! through every experiment.
//!
//! # Examples
//!
//! ```
//! use slic_cells::{Cell, CellKind, DriveStrength, TimingArc, Transition};
//! use slic_device::TechnologyNode;
//! use slic_spice::{CharacterizationEngine, InputPoint};
//! use slic_units::{Farads, Seconds, Volts};
//!
//! let engine = CharacterizationEngine::new(TechnologyNode::n14_finfet());
//! let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
//! let arc = TimingArc::new(cell, 0, Transition::Fall);
//! let point = InputPoint::new(Seconds::from_picoseconds(5.0), Farads::from_femtofarads(2.0), Volts(0.8));
//! let m = engine.simulate_nominal(cell, &arc, &point);
//! assert!(m.delay.value() > 0.0 && m.output_slew.value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod cache;
pub mod disk;
pub mod engine;
pub mod input;
pub mod measure;
pub mod simd;
pub mod transient;

pub use backend::{KernelStatsSnapshot, LocalBackend, SimRequest, SimResult, SimulationBackend};
pub use batch::{
    simulate_switching_batch, simulate_switching_batch_with_stats, simulate_switching_sweep_batch,
};
pub use cache::{CacheError, InMemorySimCache, SimKey, SimulationCache, KERNEL_VERSION};
pub use disk::{CompactionOptions, CompactionReport, DiskSimCache};
pub use engine::{
    CharacterizationEngine, ConfigError, DispatchSnapshot, MixedLane, SimulationCounter,
};
pub use input::{InputPoint, InputSpace};
pub use measure::TimingMeasurement;
pub use simd::{
    simulate_switching_batch_simd, simulate_switching_batch_simd_with_stats,
    simulate_switching_simd_with_stats, SimdBatchStats,
};
pub use transient::{
    simulate_switching, simulate_switching_rk4, simulate_switching_rk4_with_stats,
    simulate_switching_with_stats, TransientConfig, TransientStats,
};
