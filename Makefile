# Development entry points (mirrors .github/workflows/ci.yml).

CARGO ?= cargo

.PHONY: build test bench bench-kernel lint fmt clippy clean

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

bench:
	$(CARGO) bench -p slic-bench

# Transient-kernel throughput bench; rewrites BENCH_transient.json at the repo root.
bench-kernel:
	$(CARGO) bench -p slic-bench --bench transient_kernel

fmt:
	$(CARGO) fmt --all -- --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

lint: fmt clippy

clean:
	$(CARGO) clean
