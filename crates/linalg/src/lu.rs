//! LU decomposition with partial pivoting for general square systems.
//!
//! The damped Gauss–Newton steps in the least-squares and MAP extractors solve small normal
//! equations that are symmetric positive definite *in exact arithmetic* but can lose that
//! property when the damping is tiny and the Jacobian is poorly scaled.  LU with partial
//! pivoting is the robust fallback used by [`crate::Matrix::solve`].

use crate::{LinalgError, Matrix, Vector};
use serde::{Deserialize, Serialize};

/// LU decomposition `P·A = L·U` with partial pivoting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper, including diagonal) factors.
    factors: Matrix,
    /// Row permutation applied to the input: row `i` of the factored system came from
    /// original row `permutation[i]`.
    permutation: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), needed for the determinant.
    parity: f64,
}

impl Lu {
    /// Relative pivot threshold below which the matrix is declared singular.
    const SINGULARITY_THRESHOLD: f64 = 1e-300;

    /// Factorizes the square matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// * [`LinalgError::Singular`] if no usable pivot is found in some column.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                context: format!("lu of {}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut f = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut parity = 1.0;

        for col in 0..n {
            // Find the largest pivot in this column at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = f[(col, col)].abs();
            for row in (col + 1)..n {
                let candidate = f[(row, col)].abs();
                if candidate > pivot_val {
                    pivot_val = candidate;
                    pivot_row = row;
                }
            }
            if !pivot_val.is_finite() || pivot_val < Self::SINGULARITY_THRESHOLD {
                return Err(LinalgError::Singular { pivot: col });
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = f[(col, j)];
                    f[(col, j)] = f[(pivot_row, j)];
                    f[(pivot_row, j)] = tmp;
                }
                perm.swap(col, pivot_row);
                parity = -parity;
            }
            // Eliminate below the pivot.
            let pivot = f[(col, col)];
            for row in (col + 1)..n {
                let factor = f[(row, col)] / pivot;
                f[(row, col)] = factor;
                for j in (col + 1)..n {
                    f[(row, j)] -= factor * f[(col, j)];
                }
            }
        }
        Ok(Self {
            factors: f,
            permutation: perm,
            parity,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &Vector) -> Vector {
        let n = self.dim();
        assert_eq!(b.len(), n, "lu solve dimension mismatch");
        // Apply the permutation, then forward substitution (unit lower factor).
        let mut y = Vector::from_fn(n, |i| b[self.permutation[i]]);
        for i in 0..n {
            for k in 0..i {
                let delta = self.factors[(i, k)] * y[k];
                y[i] -= delta;
            }
        }
        // Backward substitution with the upper factor.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.factors[(i, k)] * x[k];
            }
            x[i] = sum / self.factors[(i, i)];
        }
        x
    }

    /// Determinant of the factored matrix.
    pub fn determinant(&self) -> f64 {
        self.parity
            * (0..self.dim())
                .map(|i| self.factors[(i, i)])
                .product::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let b = Vector::from_slice(&[8.0, -11.0, -3.0]);
        let x = Lu::decompose(&a).unwrap().solve(&b);
        // Known solution x = (2, 3, -1).
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_matches_closed_form() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = Lu::decompose(&a).unwrap();
        assert!((lu.determinant() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn permutation_needed_when_leading_pivot_is_zero() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::decompose(&a).unwrap();
        let b = Vector::from_slice(&[3.0, 5.0]);
        let x = lu.solve(&b);
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            Lu::decompose(&a).unwrap_err(),
            LinalgError::Singular { .. }
        ));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::decompose(&a).unwrap_err(),
            LinalgError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn random_well_conditioned_systems() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 5, 8] {
            let a = Matrix::from_fn(n, n, |i, j| {
                if i == j {
                    5.0 + rng.gen::<f64>()
                } else {
                    rng.gen::<f64>() - 0.5
                }
            });
            let b = Vector::from_fn(n, |_| rng.gen::<f64>() * 10.0 - 5.0);
            let x = Lu::decompose(&a).unwrap().solve(&b);
            assert!((&a.mat_vec(&x) - &b).norm() < 1e-9, "n = {n}");
        }
    }

    proptest! {
        #[test]
        fn prop_diagonally_dominant_systems_solve(values in proptest::collection::vec(-1f64..1.0, 16),
                                                  rhs in proptest::collection::vec(-10f64..10.0, 4)) {
            // Diagonally dominant => nonsingular.
            let a = Matrix::from_fn(4, 4, |i, j| {
                if i == j { 5.0 } else { values[i * 4 + j] }
            });
            let b = Vector::from_slice(&rhs);
            let x = Lu::decompose(&a).unwrap().solve(&b);
            prop_assert!((&a.mat_vec(&x) - &b).norm() < 1e-8 * (1.0 + b.norm()));
        }

        #[test]
        fn prop_determinant_of_triangular(diag in proptest::collection::vec(0.5f64..4.0, 3),
                                          off in proptest::collection::vec(-2f64..2.0, 3)) {
            let a = Matrix::from_rows(&[
                &[diag[0], off[0], off[1]],
                &[0.0, diag[1], off[2]],
                &[0.0, 0.0, diag[2]],
            ]);
            let det = Lu::decompose(&a).unwrap().determinant();
            let expected: f64 = diag.iter().product();
            prop_assert!((det - expected).abs() < 1e-9 * expected.abs());
        }
    }
}
