//! Gaussian kernel density estimation.
//!
//! Used to render the smooth delay probability densities of Fig. 9: the baseline Monte
//! Carlo sample, the proposed-method sample and the LUT-interpolated sample are each turned
//! into a density curve over a common grid and compared.

use crate::moments;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A Gaussian kernel density estimate over a univariate sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDensity {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl KernelDensity {
    /// Builds a KDE with Silverman's rule-of-thumb bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Self {
        let bandwidth = silverman_bandwidth(samples);
        Self::with_bandwidth(samples, bandwidth)
    }

    /// Builds a KDE with an explicit bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, contains non-finite values, or `bandwidth <= 0`.
    pub fn with_bandwidth(samples: &[f64], bandwidth: f64) -> Self {
        assert!(!samples.is_empty(), "KDE of empty sample");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "KDE samples must be finite"
        );
        assert!(
            bandwidth > 0.0 && bandwidth.is_finite(),
            "KDE bandwidth must be positive and finite (got {bandwidth})"
        );
        Self {
            samples: samples.to_vec(),
            bandwidth,
        }
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of samples backing the estimate.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the KDE has no samples (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / (self.samples.len() as f64 * h * (2.0 * PI).sqrt());
        self.samples
            .iter()
            .map(|&xi| {
                let z = (x - xi) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Evaluates the density on `n` equally spaced points spanning the sample range plus
    /// three bandwidths of padding on each side.
    ///
    /// Returns `(x, density)` pairs.
    pub fn evaluate_grid(&self, n: usize) -> Vec<(f64, f64)> {
        if n == 0 {
            return Vec::new();
        }
        let lo = self.samples.iter().cloned().fold(f64::INFINITY, f64::min) - 3.0 * self.bandwidth;
        let hi = self
            .samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            + 3.0 * self.bandwidth;
        slic_linspace(lo, hi, n)
            .into_iter()
            .map(|x| (x, self.density(x)))
            .collect()
    }

    /// Evaluates the density on an explicit grid of points.
    pub fn evaluate_at(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.density(x))).collect()
    }
}

/// Silverman's rule-of-thumb bandwidth `0.9 · min(σ, IQR/1.34) · n^(−1/5)`.
///
/// Falls back to a small fraction of the mean magnitude (or an absolute floor) for
/// degenerate samples so the result is always positive.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn silverman_bandwidth(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "bandwidth of empty sample");
    let sd = moments::std_dev(samples);
    let iqr = moments::quantile(samples, 0.75) - moments::quantile(samples, 0.25);
    let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
    let n = samples.len() as f64;
    let h = 0.9 * spread * n.powf(-0.2);
    if h > 0.0 && h.is_finite() {
        h
    } else {
        (moments::mean(samples).abs() * 1e-3).max(1e-12)
    }
}

/// Local linspace helper (kept private to avoid a dependency on `slic-units` here).
fn slic_linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    match n {
        0 => Vec::new(),
        1 => vec![lo],
        _ => {
            let step = (hi - lo) / (n - 1) as f64;
            (0..n).map(|i| lo + step * i as f64).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn density_is_positive_and_integrates_to_about_one() {
        let samples: Vec<f64> = (0..200).map(|i| (i as f64) / 20.0).collect();
        let kde = KernelDensity::from_samples(&samples);
        let grid = kde.evaluate_grid(400);
        assert!(grid.iter().all(|&(_, d)| d >= 0.0));
        let dx = grid[1].0 - grid[0].0;
        let integral: f64 = grid.iter().map(|&(_, d)| d * dx).sum();
        assert!((integral - 1.0).abs() < 0.02, "integral = {integral}");
    }

    #[test]
    fn density_peaks_near_data() {
        let samples = [0.0, 0.1, -0.1, 0.05, -0.05];
        let kde = KernelDensity::from_samples(&samples);
        assert!(kde.density(0.0) > kde.density(2.0));
    }

    #[test]
    fn gaussian_sample_density_matches_true_pdf_at_mean() {
        let g = crate::Gaussian::new(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = g.sample_n(&mut rng, 5_000);
        let kde = KernelDensity::from_samples(&samples);
        let true_peak = g.pdf(0.0);
        let est = kde.density(0.0);
        assert!(
            (est - true_peak).abs() / true_peak < 0.15,
            "est = {est}, true = {true_peak}"
        );
    }

    #[test]
    fn explicit_bandwidth_is_respected() {
        let samples = [0.0, 1.0, 2.0];
        let kde = KernelDensity::with_bandwidth(&samples, 0.5);
        assert_eq!(kde.bandwidth(), 0.5);
        assert_eq!(kde.len(), 3);
        assert!(!kde.is_empty());
    }

    #[test]
    fn degenerate_sample_gets_fallback_bandwidth() {
        let h = silverman_bandwidth(&[3.0, 3.0, 3.0]);
        assert!(h > 0.0);
        let kde = KernelDensity::from_samples(&[3.0, 3.0, 3.0]);
        assert!(kde.density(3.0) > 0.0);
    }

    #[test]
    fn evaluate_at_matches_density() {
        let samples = [1.0, 2.0, 3.0];
        let kde = KernelDensity::from_samples(&samples);
        let pts = kde.evaluate_at(&[1.5, 2.5]);
        assert_eq!(pts.len(), 2);
        assert!((pts[0].1 - kde.density(1.5)).abs() < 1e-15);
    }

    #[test]
    fn empty_grid_request_returns_empty() {
        let kde = KernelDensity::from_samples(&[1.0, 2.0]);
        assert!(kde.evaluate_grid(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_samples_rejected() {
        let _ = KernelDensity::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn nonpositive_bandwidth_rejected() {
        let _ = KernelDensity::with_bandwidth(&[1.0], 0.0);
    }

    proptest! {
        #[test]
        fn prop_density_nonnegative(samples in proptest::collection::vec(-1e2f64..1e2, 1..64),
                                    x in -2e2f64..2e2) {
            let kde = KernelDensity::from_samples(&samples);
            prop_assert!(kde.density(x) >= 0.0);
        }

        #[test]
        fn prop_bandwidth_positive(samples in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
            prop_assert!(silverman_bandwidth(&samples) > 0.0);
        }
    }
}
