//! The committed baseline (`lint-baseline.json`): pre-existing baselineable violations,
//! frozen so CI fails only on *new* debt — and on *stale* entries, so a fixed violation
//! must also be deleted from the baseline instead of silently reserving headroom.
//!
//! Entries are keyed by `(file, rule, excerpt)` — the trimmed source line — with a count,
//! so unrelated edits that shift line numbers do not churn the baseline, while adding a
//! second identical violation on another line still fails.

use std::collections::BTreeMap;

use serde::Value;

use crate::rules::{Rule, Violation};

/// One frozen violation class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub file: String,
    pub rule: Rule,
    pub excerpt: String,
    pub count: usize,
}

/// The parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: BTreeMap<(String, Rule, String), usize>,
}

/// A malformed baseline file.
#[derive(Debug, Clone)]
pub struct BaselineError(String);

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid baseline: {}", self.0)
    }
}

impl std::error::Error for BaselineError {}

/// How one run's findings compare against the baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Findings beyond the baselined count — these fail the run.
    pub fresh: Vec<Violation>,
    /// Findings absorbed by the baseline.
    pub absorbed: usize,
    /// Baseline entries whose counted violations no longer all exist — these fail the
    /// run too (the fix must also shrink the baseline).
    pub stale: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses the baseline JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`BaselineError`] on malformed JSON, a bad version, or entries that do
    /// not match the schema (deny-class rules are rejected outright — they are never
    /// baselineable).
    pub fn parse(text: &str) -> Result<Self, BaselineError> {
        let value: Value =
            serde_json::from_str(text).map_err(|err| BaselineError(err.to_string()))?;
        let version = value
            .get("version")
            .and_then(Value::as_f64)
            .ok_or_else(|| BaselineError("missing `version`".to_string()))?;
        if version != 1.0 {
            return Err(BaselineError(format!("unsupported version {version}")));
        }
        let raw_entries = value
            .get("entries")
            .and_then(Value::as_array)
            .ok_or_else(|| BaselineError("missing `entries` array".to_string()))?;
        let mut entries = BTreeMap::new();
        for raw in raw_entries {
            let field = |name: &str| {
                raw.get(name)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| BaselineError(format!("entry missing string `{name}`")))
            };
            let file = field("file")?;
            let code = field("rule")?;
            let excerpt = field("excerpt")?;
            let rule = Rule::from_code(&code)
                .ok_or_else(|| BaselineError(format!("unknown rule code `{code}`")))?;
            if rule.is_deny() {
                return Err(BaselineError(format!(
                    "rule {code} is deny-class and cannot be baselined ({file}: {excerpt})"
                )));
            }
            let count = raw
                .get("count")
                .and_then(Value::as_f64)
                .filter(|c| *c >= 1.0 && c.fract() == 0.0)
                .ok_or_else(|| {
                    BaselineError("entry missing positive integer `count`".to_string())
                })? as usize;
            if entries.insert((file, rule, excerpt), count).is_some() {
                return Err(BaselineError("duplicate entry".to_string()));
            }
        }
        Ok(Self { entries })
    }

    /// Loads the baseline at `path`; a missing file is an empty baseline.
    ///
    /// # Errors
    ///
    /// Returns a [`BaselineError`] when the file exists but cannot be read or parsed.
    pub fn load(path: &std::path::Path) -> Result<Self, BaselineError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(err) => Err(BaselineError(format!(
                "cannot read `{}`: {err}",
                path.display()
            ))),
        }
    }

    /// Builds a baseline from one run's findings, keeping only baselineable rules.
    pub fn from_violations<'a>(violations: impl IntoIterator<Item = &'a Violation>) -> Self {
        let mut entries: BTreeMap<(String, Rule, String), usize> = BTreeMap::new();
        for violation in violations {
            if violation.rule.is_deny() {
                continue;
            }
            *entries
                .entry((
                    violation.file.clone(),
                    violation.rule,
                    violation.excerpt.clone(),
                ))
                .or_insert(0) += 1;
        }
        Self { entries }
    }

    /// Splits findings into fresh (beyond the baselined count) and absorbed, and reports
    /// stale baseline entries.  Findings arrive sorted by line per file, so when a class
    /// has more hits than baseline headroom the *later* lines are the fresh ones.
    pub fn diff(&self, violations: &[Violation]) -> BaselineDiff {
        let mut budget: BTreeMap<(String, Rule, String), usize> = self.entries.clone();
        let mut diff = BaselineDiff::default();
        for violation in violations {
            if violation.rule.is_deny() {
                diff.fresh.push(violation.clone());
                continue;
            }
            let key = (
                violation.file.clone(),
                violation.rule,
                violation.excerpt.clone(),
            );
            match budget.get_mut(&key) {
                Some(remaining) if *remaining > 0 => {
                    *remaining -= 1;
                    diff.absorbed += 1;
                }
                _ => diff.fresh.push(violation.clone()),
            }
        }
        for ((file, rule, excerpt), remaining) in budget {
            if remaining > 0 {
                diff.stale.push(BaselineEntry {
                    file,
                    rule,
                    excerpt,
                    count: remaining,
                });
            }
        }
        diff
    }

    /// The baseline as a stable, diffable JSON document (sorted entries, one per line).
    pub fn to_json(&self) -> String {
        let entries: Vec<Value> = self
            .entries
            .iter()
            .map(|((file, rule, excerpt), count)| {
                Value::Object(vec![
                    ("file".to_string(), Value::String(file.clone())),
                    ("rule".to_string(), Value::String(rule.code().to_string())),
                    ("excerpt".to_string(), Value::String(excerpt.clone())),
                    ("count".to_string(), Value::Number(*count as f64)),
                ])
            })
            .collect();
        let document = Value::Object(vec![
            ("version".to_string(), Value::Number(1.0)),
            ("entries".to_string(), Value::Array(entries)),
        ]);
        let mut text = serde_json::to_string_pretty(&document).unwrap_or_else(|_| "{}".to_string()); // slic-lint: allow(P1) -- Value serialization to a String is infallible in the compat layer.
        text.push('\n');
        text
    }

    /// Total baselined violation count, per rule.
    pub fn counts(&self) -> BTreeMap<Rule, usize> {
        let mut counts = BTreeMap::new();
        for ((_, rule, _), count) in &self.entries {
            *counts.entry(*rule).or_insert(0) += count;
        }
        counts
    }

    /// Whether the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(file: &str, rule: Rule, line: u32, excerpt: &str) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            rule,
            message: "m".to_string(),
            excerpt: excerpt.to_string(),
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let violations = vec![
            violation("a.rs", Rule::P1, 3, "x.unwrap()"),
            violation("a.rs", Rule::P1, 9, "x.unwrap()"),
            violation("b.rs", Rule::L1, 2, "solve_batch(reqs)"),
        ];
        let baseline = Baseline::from_violations(&violations);
        let parsed = Baseline::parse(&baseline.to_json()).expect("roundtrip");
        assert_eq!(parsed.entries, baseline.entries);
        let diff = parsed.diff(&violations);
        assert!(diff.fresh.is_empty(), "{:?}", diff.fresh);
        assert!(diff.stale.is_empty(), "{:?}", diff.stale);
        assert_eq!(diff.absorbed, 3);
    }

    #[test]
    fn extra_hits_are_fresh_and_missing_hits_are_stale() {
        let baseline = Baseline::from_violations(&[
            violation("a.rs", Rule::P1, 3, "x.unwrap()"),
            violation("a.rs", Rule::P1, 9, "x.unwrap()"),
        ]);
        // Three identical hits against a budget of two: the last line is fresh.
        let now = vec![
            violation("a.rs", Rule::P1, 3, "x.unwrap()"),
            violation("a.rs", Rule::P1, 9, "x.unwrap()"),
            violation("a.rs", Rule::P1, 12, "x.unwrap()"),
        ];
        let diff = baseline.diff(&now);
        assert_eq!(diff.fresh.len(), 1);
        assert_eq!(diff.fresh[0].line, 12);
        // One hit against a budget of two: one stale unit remains.
        let diff = baseline.diff(&now[..1]);
        assert!(diff.fresh.is_empty());
        assert_eq!(diff.stale.len(), 1);
        assert_eq!(diff.stale[0].count, 1);
    }

    #[test]
    fn deny_rules_are_never_absorbed_or_baselined() {
        let d1 = violation("a.rs", Rule::D1, 1, "HashMap::new()");
        let baseline = Baseline::from_violations(std::slice::from_ref(&d1));
        assert!(baseline.is_empty());
        let diff = baseline.diff(std::slice::from_ref(&d1));
        assert_eq!(diff.fresh.len(), 1);
        let hand_written = r#"{"version":1,"entries":[
            {"file":"a.rs","rule":"D1","excerpt":"HashMap::new()","count":1}]}"#;
        assert!(Baseline::parse(hand_written).is_err());
    }
}
