//! Fig. 9: delay probability density at the low-supply corner `Vdd = 0.734 V`,
//! `Sin = 5.09 ps`, `Cload = 1.67 fF` — baseline Monte Carlo vs the proposed method with 7
//! fitting conditions vs LUT interpolation with 60 conditions.  The baseline distribution
//! is visibly non-Gaussian (right-skewed) and the proposed method reproduces it.

use criterion::{criterion_group, criterion_main, Criterion};
use slic::prelude::*;
use slic::statistical::{StatisticalStudy, StatisticalStudyConfig};
use slic_bench::{banner, bench_historical_db, planar_history};

fn regenerate(db: &HistoricalDatabase) {
    banner(
        "Fig. 9",
        "Delay PDF at Vdd=0.734V, Sin=5.09ps, Cload=1.67fF: baseline vs proposed (7 pts) vs LUT (60 pts)",
    );
    let config = StatisticalStudyConfig {
        validation_points: 10,
        process_seeds: 150,
        training_counts: vec![7],
        ..StatisticalStudyConfig::default()
    };
    let study = StatisticalStudy::new(TechnologyNode::target_28nm(), db, config);
    let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let corner = InputPoint::new(
        Seconds::from_picoseconds(5.09),
        Farads::from_femtofarads(1.67),
        Volts(0.734),
    );
    let pdf = study.delay_pdf(cell, &arc, corner, 7, 60);

    let report = |label: &str, samples: &[f64]| {
        let s = Summary::from_samples(samples);
        println!(
            "  {label:<28} mean = {:>7.2} ps, sigma = {:>6.2} ps, skewness = {:>5.2}, p95 = {:>7.2} ps",
            s.mean * 1e12,
            s.std_dev * 1e12,
            s.skewness,
            slic_stats::moments::quantile(samples, 0.95) * 1e12
        );
    };
    println!("{} process seeds at {corner}:", pdf.baseline.len());
    report("baseline (SPICE MC)", &pdf.baseline);
    report(
        &format!("proposed ({} conditions)", pdf.proposed_training_conditions),
        &pdf.proposed,
    );
    report(
        &format!("LUT ({} conditions)", pdf.lut_training_conditions),
        &pdf.lut,
    );
    println!(
        "  per-seed tracking error: proposed = {:.2}%, LUT = {:.2}%",
        pdf.proposed_error_percent(),
        pdf.lut_error_percent()
    );

    // Density curves on a shared grid (the actual Fig. 9 curves).
    let kde_base = KernelDensity::from_samples(&pdf.baseline);
    let kde_prop = KernelDensity::from_samples(&pdf.proposed);
    let kde_lut = KernelDensity::from_samples(&pdf.lut);
    println!("\n  delay (ps) |   baseline |   proposed |        LUT");
    for (x, d_base) in kde_base.evaluate_grid(12) {
        println!(
            "  {:>10.2} | {:>10.3e} | {:>10.3e} | {:>10.3e}",
            x * 1e12,
            d_base,
            kde_prop.density(x),
            kde_lut.density(x)
        );
    }
    println!("\n(paper: the proposed method with 7 conditions tracks the non-Gaussian baseline; the LUT needs 60)");
}

fn bench(c: &mut Criterion) {
    let db = bench_historical_db(&planar_history());
    regenerate(&db);

    // Kernel: kernel-density evaluation over the reconstruction grid.
    let samples: Vec<f64> = (0..400)
        .map(|i| 1.0e-11 + (i % 37) as f64 * 2.0e-13)
        .collect();
    let kde = KernelDensity::from_samples(&samples);
    c.bench_function("fig9_kde_evaluation", |b| b.iter(|| kde.evaluate_grid(100)));
}

criterion_group! {
    name = benches;
    config = slic_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
