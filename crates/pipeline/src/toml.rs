//! A minimal flat-TOML reader for run configurations.
//!
//! The full TOML data model is far more than a run config needs, and no TOML crate is
//! available offline, so this module accepts the practical subset: `key = value` lines with
//! string, integer, float, boolean and homogeneous-array values, plus `#` comments, blank
//! lines and **dotted keys** (`variation.process_seeds = 30` nests into a
//! `variation` object, matching the JSON shape).  Tables/section headers are rejected with
//! a pointed error so nobody discovers a silently ignored `[section]` the hard way; a
//! quoted key (`"a.b" = 1`) keeps its dot literally, as TOML specifies.

use crate::error::PipelineError;
use serde::Value;

/// Parses flat-TOML text into the same [`Value::Object`] shape `serde_json` produces, so
/// config deserialization is format-independent.
///
/// # Errors
///
/// Returns a [`PipelineError::Config`] naming the offending line on any syntax error.
pub fn parse(text: &str) -> Result<Value, PipelineError> {
    let mut entries: Vec<(String, Value)> = Vec::new();
    for (index, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let lineno = index + 1;
        if line.starts_with('[') {
            return Err(PipelineError::config(format!(
                "line {lineno}: table headers are not supported by the flat-TOML run-config reader; use top-level keys"
            )));
        }
        let (key, value_text) = line.split_once('=').ok_or_else(|| {
            PipelineError::config(format!("line {lineno}: expected `key = value`"))
        })?;
        let (key, quoted) = parse_key(key.trim(), lineno)?;
        if key.is_empty() {
            return Err(PipelineError::config(format!("line {lineno}: empty key")));
        }
        let value = parse_value(value_text.trim(), lineno)?;
        // An unquoted dotted key (`variation.process_seeds`) nests; a quoted one is
        // literal.
        let segments: Vec<&str> = if quoted {
            vec![key]
        } else {
            key.split('.').collect()
        };
        if segments.iter().any(|s| s.is_empty()) {
            return Err(PipelineError::config(format!(
                "line {lineno}: empty segment in dotted key `{key}`"
            )));
        }
        insert_nested(&mut entries, &segments, value, lineno)?;
    }
    Ok(Value::Object(entries))
}

/// Inserts `value` at the nested path `segments`, creating intermediate objects and
/// rejecting conflicts (a path segment that already holds a plain value, or a duplicate
/// leaf) instead of silently overwriting.
fn insert_nested(
    entries: &mut Vec<(String, Value)>,
    segments: &[&str],
    value: Value,
    lineno: usize,
) -> Result<(), PipelineError> {
    // slic-lint: allow(P1) -- structural: the only caller splits a non-empty dotted key, so segments always has a head.
    let (head, rest) = segments.split_first().expect("segments are non-empty");
    let existing = entries.iter_mut().find(|(k, _)| k == head);
    if rest.is_empty() {
        if existing.is_some() {
            return Err(PipelineError::config(format!(
                "line {lineno}: duplicate key `{head}`"
            )));
        }
        entries.push((head.to_string(), value));
        return Ok(());
    }
    match existing {
        Some((_, Value::Object(inner))) => insert_nested(inner, rest, value, lineno),
        Some(_) => Err(PipelineError::config(format!(
            "line {lineno}: key `{head}` holds a value and cannot also be a dotted table"
        ))),
        None => {
            let mut inner = Vec::new();
            insert_nested(&mut inner, rest, value, lineno)?;
            entries.push((head.to_string(), Value::Object(inner)));
            Ok(())
        }
    }
}

/// Visits every character of `text` that sits *outside* quoted strings, tracking the
/// in-string state with `\"`-escape awareness.  The one scanner shared by comment
/// stripping and array splitting, so the two can never disagree about where a string
/// ends.
fn for_each_unquoted(text: &str, mut visit: impl FnMut(usize, char)) {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else if c == '"' {
            in_string = true;
        } else {
            visit(i, c);
        }
    }
}

/// Strips a `#` comment, respecting `#` inside quoted strings — including strings that
/// contain escaped quotes (`\"`), which must not toggle the in-string state.
fn strip_comment(line: &str) -> &str {
    let mut cut = None;
    for_each_unquoted(line, |i, c| {
        if c == '#' && cut.is_none() {
            cut = Some(i);
        }
    });
    match cut {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Validates a key: either a bare key without quotes, or a fully quoted `"key"`.  A stray
/// or unbalanced quote (`"key`, `key"`, `ke"y`) is rejected instead of being silently
/// trimmed into a different key than the author wrote.  The flag reports whether the key
/// was quoted (quoted keys never split on dots).
fn parse_key(raw: &str, lineno: usize) -> Result<(&str, bool), PipelineError> {
    if let Some(stripped) = raw.strip_prefix('"') {
        let inner = stripped.strip_suffix('"').filter(|k| !k.contains('"'));
        return inner.map(|k| (k, true)).ok_or_else(|| {
            PipelineError::config(format!("line {lineno}: unbalanced quotes in key `{raw}`"))
        });
    }
    if raw.contains('"') {
        return Err(PipelineError::config(format!(
            "line {lineno}: unbalanced quotes in key `{raw}`"
        )));
    }
    Ok((raw, false))
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, PipelineError> {
    if text.is_empty() {
        return Err(PipelineError::config(format!(
            "line {lineno}: missing value"
        )));
    }
    if let Some(stripped) = text.strip_prefix('[') {
        let inner = stripped
            .strip_suffix(']')
            .ok_or_else(|| PipelineError::config(format!("line {lineno}: unterminated array")))?;
        let mut items = Vec::new();
        for part in split_array_items(inner) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part, lineno)?);
            }
        }
        return Ok(Value::Array(items));
    }
    if let Some(stripped) = text.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| PipelineError::config(format!("line {lineno}: unterminated string")))?;
        return Ok(Value::String(unescape_string(inner, lineno)?));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    text.parse::<f64>().map(Value::Number).map_err(|_| {
        PipelineError::config(format!(
            "line {lineno}: `{text}` is not a string (quote it), number, boolean or array"
        ))
    })
}

/// Decodes the supported escapes (`\"`, `\\`, `\n`, `\t`) of a string body; a raw quote
/// or unknown escape is an error rather than a silently mangled value.
fn unescape_string(inner: &str, lineno: usize) -> Result<String, PipelineError> {
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                return Err(PipelineError::config(format!(
                    "line {lineno}: unescaped quote inside a string (use \\\")"
                )));
            }
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => {
                    return Err(PipelineError::config(format!(
                        "line {lineno}: unsupported escape `\\{}` in string",
                        other.map(String::from).unwrap_or_default()
                    )));
                }
            },
            other => out.push(other),
        }
    }
    Ok(out)
}

/// Splits array contents on commas outside quoted strings (arrays do not nest in the
/// supported subset); escaped quotes inside strings do not end the string.
fn split_array_items(inner: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    for_each_unquoted(inner, |i, c| {
        if c == ',' {
            items.push(&inner[start..i]);
            start = i + 1;
        }
    });
    items.push(&inner[start..]);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_supported_subset() {
        let value = parse(
            r#"
            # characterization run
            library = "paper-trio"
            profile = "quick"   # fast settings
            seed = 42
            scale = 1.5
            resume = true
            metrics = ["delay", "slew"]
            counts = [1, 2, 3]
            empty = []
            "#,
        )
        .unwrap();
        assert_eq!(value.get("library").unwrap().as_str(), Some("paper-trio"));
        assert_eq!(value.get("seed").unwrap().as_f64(), Some(42.0));
        assert_eq!(value.get("scale").unwrap().as_f64(), Some(1.5));
        assert_eq!(value.get("resume").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("metrics").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(value.get("counts").unwrap().as_array().unwrap().len(), 3);
        assert!(value.get("empty").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn rejects_sections_duplicates_and_syntax_errors() {
        assert!(parse("[run]\nkey = 1")
            .unwrap_err()
            .to_string()
            .contains("table headers"));
        assert!(parse("a = 1\na = 2")
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
        assert!(parse("just a line")
            .unwrap_err()
            .to_string()
            .contains("key = value"));
        assert!(parse("a = ")
            .unwrap_err()
            .to_string()
            .contains("missing value"));
        assert!(parse("a = \"unterminated")
            .unwrap_err()
            .to_string()
            .contains("unterminated"));
        assert!(parse("a = [1, 2")
            .unwrap_err()
            .to_string()
            .contains("unterminated array"));
        assert!(parse("a = nope")
            .unwrap_err()
            .to_string()
            .contains("not a string"));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let value = parse("note = \"keep # this\"").unwrap();
        assert_eq!(value.get("note").unwrap().as_str(), Some("keep # this"));
    }

    #[test]
    fn escaped_quotes_do_not_confuse_comment_stripping() {
        // The escaped quote must not flip the in-string state: the `#` after it is still
        // inside the string, and the trailing comment is still a comment.
        let value = parse(r#"note = "say \"hi\" # keep" # strip this"#).unwrap();
        assert_eq!(
            value.get("note").unwrap().as_str(),
            Some("say \"hi\" # keep")
        );
        let arr = parse(r#"notes = ["a \"b\", c # keep", "d"] # strip"#).unwrap();
        let items = arr.get("notes").unwrap().as_array().unwrap();
        assert_eq!(items.len(), 2, "the escaped quote must not split the array");
        assert_eq!(items[0].as_str(), Some("a \"b\", c # keep"));
    }

    #[test]
    fn string_escapes_are_decoded() {
        let value = parse(r#"text = "tab\tnewline\nback\\slash""#).unwrap();
        assert_eq!(
            value.get("text").unwrap().as_str(),
            Some("tab\tnewline\nback\\slash")
        );
        assert!(parse(r#"text = "bad \q escape""#)
            .unwrap_err()
            .to_string()
            .contains("unsupported escape"));
        assert!(parse(r#"text = "raw " quote""#)
            .unwrap_err()
            .to_string()
            .contains("unescaped quote"));
    }

    #[test]
    fn dotted_keys_nest_into_objects() {
        let value = parse(
            r#"
            seed = 7
            variation.process_seeds = 30
            variation.sigma_corners = [1.0, 3.0]
            "#,
        )
        .unwrap();
        assert_eq!(value.get("seed").unwrap().as_f64(), Some(7.0));
        let variation = value.get("variation").unwrap();
        assert_eq!(variation.get("process_seeds").unwrap().as_f64(), Some(30.0));
        assert_eq!(
            variation
                .get("sigma_corners")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
        // A quoted key keeps its dot literally instead of nesting.
        let literal = parse(r#""a.b" = 1"#).unwrap();
        assert_eq!(literal.get("a.b").unwrap().as_f64(), Some(1.0));
        assert!(literal.get("a").is_none());
    }

    #[test]
    fn dotted_key_conflicts_are_rejected() {
        assert!(parse("a = 1\na.b = 2")
            .unwrap_err()
            .to_string()
            .contains("cannot also be a dotted table"));
        assert!(parse("a.b = 1\na.b = 2")
            .unwrap_err()
            .to_string()
            .contains("duplicate key `b`"));
        assert!(parse("a..b = 1")
            .unwrap_err()
            .to_string()
            .contains("empty segment"));
    }

    #[test]
    fn unbalanced_key_quotes_are_rejected() {
        for bad in [r#""key = 1"#, r#"key" = 1"#, r#"ke"y = 1"#] {
            assert!(
                parse(bad)
                    .unwrap_err()
                    .to_string()
                    .contains("unbalanced quotes in key"),
                "`{bad}` must be rejected"
            );
        }
        let value = parse(r#""quoted" = 3"#).unwrap();
        assert_eq!(value.get("quoted").unwrap().as_f64(), Some(3.0));
        assert!(parse(r#""" = 1"#)
            .unwrap_err()
            .to_string()
            .contains("empty key"));
    }
}
