//! The characterization engine: the workspace's stand-in for "HSPICE plus a deck generator".
//!
//! A [`CharacterizationEngine`] is bound to one [`TechnologyNode`] and provides the three
//! operations every experiment in the paper is built from:
//!
//! 1. single switching-event simulations (`.TRAN` on one arc at one input condition),
//! 2. sweeps over many input conditions for a fixed process seed (the `.ALTER` loop), and
//! 3. Monte Carlo ensembles over process seeds at fixed input conditions.
//!
//! Every transient simulation increments a shared [`SimulationCounter`].  The paper's
//! reported speedups are ratios of simulation counts at equal accuracy, so the counter is
//! the basis of all cost accounting in `slic-core` and the benches.

use crate::backend::{LocalBackend, SimRequest, SimulationBackend};
use crate::cache::{SimKey, SimulationCache};
use crate::input::{InputPoint, InputSpace};
use crate::measure::TimingMeasurement;
use crate::transient::TransientConfig;
use rayon::prelude::*;
use slic_cells::{Cell, EquivalentInverter, TimingArc};
use slic_device::{ProcessSample, TechnologyNode};
use slic_obs::metrics::{LANE_BUCKETS, LATENCY_BUCKETS_NS};
use slic_obs::Observability;
use slic_units::Amperes;
use std::collections::BTreeSet;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One batched-simulation request: an input point under one process seed.
type Lane = (InputPoint, ProcessSample);

/// One fully-specified lane of a mixed worklist: cell, arc, input point and process seed.
///
/// Mixed lanes let callers batch across *everything* that varies — arcs, grid points and
/// seeds — into one kernel worklist, instead of issuing one batch per arc or per seed.
pub type MixedLane = (Cell, TimingArc, InputPoint, ProcessSample);

/// Lanes per batched-kernel call when a lane list is fanned out across worker threads:
/// small enough that chunk count keeps every core busy, large enough that the batched
/// worklist amortizes setup.
fn batch_width(lanes: usize) -> usize {
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    lanes.div_ceil(4 * threads).clamp(1, 16)
}

/// An invalid [`TransientConfig`] was supplied to an engine constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: String) -> Self {
        Self { message }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid transient configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// A cloneable handle onto a shared count of transient simulations.
#[derive(Debug, Clone, Default)]
pub struct SimulationCounter {
    count: Arc<AtomicU64>,
}

impl SimulationCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Adds `n` simulations to the count.
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Resets the count to zero and returns the previous value.
    pub fn reset(&self) -> u64 {
        self.count.swap(0, Ordering::Relaxed)
    }
}

/// Shared dispatch counters of one engine (and its clones): how batched lanes were
/// resolved.  Every lane that enters batched dispatch lands in exactly one bucket, so
/// `dispatched == cached + claimed + deferred` at any quiescent point — the invariant the
/// post-run dispatch summary and the deferral regression tests check.
#[derive(Debug, Default)]
struct DispatchCounters {
    dispatched: AtomicU64,
    cached: AtomicU64,
    claimed: AtomicU64,
    deferred: AtomicU64,
}

/// A point-in-time copy of an engine's dispatch counters.
///
/// `lanes_deferred` counts lanes that arrived in a batch while another worker already
/// held their coordinate in flight: they fall back to the scalar single-flight path
/// (waiting on the owner, then reading the cache).  Before this counter existed those
/// lanes bypassed batch accounting entirely, making dispatch summaries under-report
/// contended cross-seed batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchSnapshot {
    /// Lanes submitted through batched dispatch.
    pub lanes_dispatched: u64,
    /// Lanes answered from the simulation cache without solving.
    pub lanes_cached: u64,
    /// Lanes this engine claimed and solved in a batched worklist.
    pub lanes_claimed: u64,
    /// Lanes deferred to the scalar path because their coordinate was in flight elsewhere.
    pub lanes_deferred: u64,
}

/// The set of cache coordinates currently being solved, shared by every clone of one
/// engine.  It implements single-flight deduplication: when two workers miss on the same
/// coordinate concurrently, exactly one runs the solver and the others wait for its
/// result, so a coordinate is never paid for twice within a process and the simulation
/// totals of a run are deterministic regardless of thread interleaving.
#[derive(Debug, Default)]
struct InFlight {
    keys: Mutex<BTreeSet<SimKey>>,
    done: Condvar,
}

/// Removes an in-flight claim when the owning solve finishes — including by panic, so
/// sibling workers waiting on the coordinate wake up and retry instead of hanging.
struct InFlightClaim<'a> {
    inflight: &'a InFlight,
    key: &'a SimKey,
}

impl Drop for InFlightClaim<'_> {
    fn drop(&mut self) {
        let mut keys = self
            .inflight
            .keys
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        keys.remove(self.key);
        self.inflight.done.notify_all();
    }
}

/// Removes a *set* of in-flight claims when a batched solve finishes — including by
/// panic, so workers waiting on any of the coordinates wake up and retry.
struct BatchClaims<'a> {
    inflight: &'a InFlight,
    keys: Vec<SimKey>,
}

impl Drop for BatchClaims<'_> {
    fn drop(&mut self) {
        let mut keys = self
            .inflight
            .keys
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for key in &self.keys {
            keys.remove(key);
        }
        self.inflight.done.notify_all();
    }
}

/// A simulator front-end bound to one technology node.
#[derive(Clone)]
pub struct CharacterizationEngine {
    tech: Arc<TechnologyNode>,
    config: TransientConfig,
    counter: SimulationCounter,
    cache: Option<Arc<dyn SimulationCache>>,
    backend: Arc<dyn SimulationBackend>,
    inflight: Arc<InFlight>,
    dispatch: Arc<DispatchCounters>,
    obs: Observability,
}

impl fmt::Debug for CharacterizationEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CharacterizationEngine")
            .field("tech", &self.tech)
            .field("config", &self.config)
            .field("counter", &self.counter)
            .field("cache", &self.cache.as_ref().map(|_| "..."))
            .field("backend", &self.backend.name())
            .finish()
    }
}

impl CharacterizationEngine {
    /// Creates an engine with the accurate (baseline-grade) transient settings.
    pub fn new(tech: TechnologyNode) -> Self {
        Self::with_config(tech, TransientConfig::accurate())
            // slic-lint: allow(P1) -- the accurate preset is a compile-time constant that validates; a Result here would force every caller to handle an impossible error.
            .expect("the accurate preset always validates")
    }

    /// Creates an engine with an explicit transient configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first field that fails validation.
    pub fn with_config(tech: TechnologyNode, config: TransientConfig) -> Result<Self, ConfigError> {
        config.validate().map_err(ConfigError::new)?;
        Ok(Self {
            tech: Arc::new(tech),
            config,
            counter: SimulationCounter::new(),
            cache: None,
            backend: Arc::new(LocalBackend::new()),
            inflight: Arc::new(InFlight::default()),
            dispatch: Arc::new(DispatchCounters::default()),
            obs: Observability::default(),
        })
    }

    /// Replaces this engine's counter with a shared one, so simulation costs from several
    /// engines (one per technology, or one per pipeline stage) aggregate into one total.
    #[must_use]
    pub fn with_shared_counter(mut self, counter: SimulationCounter) -> Self {
        self.counter = counter;
        self
    }

    /// Attaches a simulation cache.  Subsequent [`simulate`](Self::simulate) calls answer
    /// repeated coordinates from the cache without running the solver and without
    /// incrementing the simulation counter.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<dyn SimulationCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached simulation cache, if any.
    pub fn cache(&self) -> Option<&Arc<dyn SimulationCache>> {
        self.cache.as_ref()
    }

    /// Replaces the backend that executes transient solves.  The counter, cache and
    /// single-flight layering stay on this engine's side of the boundary, so a backend
    /// swap cannot change what a run pays for — only where the solves execute.
    #[must_use]
    pub fn with_backend(mut self, backend: Arc<dyn SimulationBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// The backend executing this engine's transient solves.
    pub fn backend(&self) -> &Arc<dyn SimulationBackend> {
        &self.backend
    }

    /// Attaches the display-only observability bundle (trace recorder + metrics
    /// registry).  Spans and counters are recorded *around* dispatch, never inside a
    /// result path, so attaching a recorder cannot change any artifact byte.
    #[must_use]
    pub fn with_observability(mut self, obs: Observability) -> Self {
        self.obs = obs;
        self
    }

    /// The observability bundle in use (disabled/no-op by default).
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// The technology this engine simulates.
    pub fn tech(&self) -> &TechnologyNode {
        &self.tech
    }

    /// The transient solver configuration in use.
    pub fn config(&self) -> &TransientConfig {
        &self.config
    }

    /// Handle onto the shared simulation counter.
    pub fn counter(&self) -> &SimulationCounter {
        &self.counter
    }

    /// Total number of transient simulations run so far (across clones of this engine).
    pub fn simulation_count(&self) -> u64 {
        self.counter.count()
    }

    /// Snapshot of the batched-dispatch counters (shared across clones of this engine).
    pub fn dispatch_stats(&self) -> DispatchSnapshot {
        DispatchSnapshot {
            lanes_dispatched: self.dispatch.dispatched.load(Ordering::Relaxed),
            lanes_cached: self.dispatch.cached.load(Ordering::Relaxed),
            lanes_claimed: self.dispatch.claimed.load(Ordering::Relaxed),
            lanes_deferred: self.dispatch.deferred.load(Ordering::Relaxed),
        }
    }

    /// The default characterization input space of this technology (paper ranges for slew
    /// and load, the technology's own supply window).
    pub fn input_space(&self) -> InputSpace {
        InputSpace::paper_space(self.tech.vdd_range())
    }

    /// Builds the equivalent inverter of `cell` under `seed`.
    pub fn equivalent_inverter(&self, cell: Cell, seed: &ProcessSample) -> EquivalentInverter {
        EquivalentInverter::build(&self.tech, cell, seed)
    }

    /// Effective switching current (Eq. 4) of the arc's driving device at the given supply.
    ///
    /// This is a pair of DC operating-point evaluations, not a transient simulation, so it
    /// does not increment the simulation counter — matching the paper's assumption that
    /// `Ieff` per input vector is available from performance modelling.
    pub fn ieff(&self, arc: &TimingArc, point: &InputPoint, seed: &ProcessSample) -> Amperes {
        self.equivalent_inverter(arc.cell(), seed)
            .ieff(arc, point.vdd)
    }

    /// Runs one transient simulation of `arc` at `point` under process seed `seed`.
    ///
    /// With a cache attached, concurrent requests for one coordinate are single-flighted:
    /// the first requester solves while the others wait and are then answered from the
    /// cache, so each unique coordinate is simulated (and counted) exactly once per
    /// process and the run's cost totals are deterministic under any thread schedule.
    ///
    /// # Panics
    ///
    /// Panics if the transient solver cannot complete the transition — with the supported
    /// technologies and the paper input space this only happens for unphysical inputs, and
    /// failing loudly is preferable to silently corrupting a characterization campaign.
    pub fn simulate(
        &self,
        cell: Cell,
        arc: &TimingArc,
        point: &InputPoint,
        seed: &ProcessSample,
    ) -> TimingMeasurement {
        let Some(cache) = self.cache.as_ref() else {
            return self.solve(cell, arc, point, seed);
        };
        let key = SimKey::new(self.tech.name(), arc, point, seed, &self.config);
        if let Some(measurement) = cache.lookup(&key) {
            return measurement;
        }
        // Miss: claim the coordinate, or wait for whichever worker already owns it.
        {
            // A poisoned in-flight set only means a sibling solve panicked; its claim was
            // already released by InFlightClaim's Drop, so the set is consistent — recover
            // it instead of cascading the panic into every waiting worker.
            let mut keys = self
                .inflight
                .keys
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            loop {
                if let Some(measurement) = cache.lookup(&key) {
                    return measurement;
                }
                if !keys.contains(&key) {
                    keys.insert(key.clone());
                    break;
                }
                keys = self
                    .inflight
                    .done
                    .wait(keys)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
        let claim = InFlightClaim {
            inflight: &self.inflight,
            key: &key,
        };
        let measurement = self.solve(cell, arc, point, seed);
        cache.store(key.clone(), measurement);
        drop(claim);
        measurement
    }

    /// Assembles the backend request for one lane.
    fn request(
        &self,
        cell: Cell,
        arc: &TimingArc,
        point: &InputPoint,
        seed: &ProcessSample,
    ) -> SimRequest {
        SimRequest {
            tech: self.tech.clone(),
            cell,
            arc: *arc,
            point: *point,
            seed: *seed,
            config: self.config,
        }
    }

    /// Runs the solver unconditionally (through the configured backend) and counts the
    /// simulation.
    fn solve(
        &self,
        cell: Cell,
        arc: &TimingArc,
        point: &InputPoint,
        seed: &ProcessSample,
    ) -> TimingMeasurement {
        let request = self.request(cell, arc, point, seed);
        self.counter.add(1);
        self.backend
            .solve_batch(std::slice::from_ref(&request))
            .pop()
            // slic-lint: allow(P1) -- one-request-in/one-result-out is the SimulationBackend contract; a short reply is a broken backend, not a recoverable state.
            .expect("backend returns one result per request")
            .unwrap_or_else(|err| {
                // slic-lint: allow(P1) -- a failed transient means unphysical inputs or a diverged solver; archiving a partial table would poison every downstream artifact, so failing loudly is the contract.
                panic!(
                    "transient simulation failed for {} at {point}: {err}",
                    arc.id()
                )
            })
    }

    /// Solves one batch of mixed lanes through the batched kernel, preserving the scalar
    /// path's counter, cache and single-flight semantics: each lane counts and caches as
    /// one simulation, repeated coordinates are answered from the cache, and a coordinate
    /// being solved elsewhere is never paid for twice.  Every lane is recorded in the
    /// dispatch counters under exactly one of cached/claimed/deferred.
    ///
    /// Lanes whose coordinate is already in flight on another worker are *deferred*: the
    /// batch first solves the lanes it could claim (holding their claims), releases them,
    /// and only then waits on the stragglers through the scalar path — waiting while
    /// holding claims could deadlock two batches against each other.
    fn simulate_mixed_lane_batch(&self, lanes: &[MixedLane]) -> Vec<TimingMeasurement> {
        self.obs
            .metrics
            .observe("engine.batch.lanes", lanes.len() as u64, LANE_BUCKETS);
        let mut batch_span = self
            .obs
            .trace
            .span("solve_batch", &[("lanes", lanes.len().to_string())]);
        self.dispatch
            .dispatched
            .fetch_add(lanes.len() as u64, Ordering::Relaxed);
        let solve_batch = |subset: &[MixedLane]| -> Vec<TimingMeasurement> {
            let requests: Vec<SimRequest> = subset
                .iter()
                .map(|(cell, arc, point, seed)| self.request(*cell, arc, point, seed))
                .collect();
            self.counter.add(subset.len() as u64);
            self.dispatch
                .claimed
                .fetch_add(subset.len() as u64, Ordering::Relaxed);
            let backend_span = self
                .obs
                .trace
                .span("backend.solve", &[("lanes", subset.len().to_string())]);
            let solved = self.backend.solve_batch(&requests);
            if self.obs.trace.is_enabled() {
                self.obs.metrics.observe(
                    "backend.solve.latency_ns",
                    backend_span.elapsed_ns(),
                    LATENCY_BUCKETS_NS,
                );
            }
            drop(backend_span);
            solved
                .into_iter()
                .zip(subset)
                .map(|(result, (_, arc, point, _))| {
                    result.unwrap_or_else(|err| {
                        // slic-lint: allow(P1) -- same contract as the scalar path: a failed transient must never be archived as a measurement.
                        panic!(
                            "transient simulation failed for {} at {point}: {err}",
                            arc.id()
                        )
                    })
                })
                .collect()
        };

        let Some(cache) = self.cache.as_ref() else {
            return solve_batch(lanes);
        };

        let keys: Vec<SimKey> = lanes
            .iter()
            .map(|(_, arc, point, seed)| {
                SimKey::new(self.tech.name(), arc, point, seed, &self.config)
            })
            .collect();
        let mut results: Vec<Option<TimingMeasurement>> = vec![None; lanes.len()];
        let mut misses: Vec<usize> = Vec::new();
        {
            let mut lookup_span = self
                .obs
                .trace
                .span("cache.lookup", &[("lanes", lanes.len().to_string())]);
            for (i, key) in keys.iter().enumerate() {
                match cache.lookup(key) {
                    Some(m) => results[i] = Some(m),
                    None => misses.push(i),
                }
            }
            lookup_span.attr("hits", (lanes.len() - misses.len()).to_string());
        }

        // Claim what we can in one pass over the in-flight set; lanes owned by another
        // worker are deferred.
        let mut claimed: Vec<usize> = Vec::new();
        let mut deferred: Vec<usize> = Vec::new();
        if !misses.is_empty() {
            let mut inflight = self
                .inflight
                .keys
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for i in misses {
                if let Some(m) = cache.lookup(&keys[i]) {
                    results[i] = Some(m);
                } else if inflight.contains(&keys[i]) {
                    deferred.push(i);
                } else {
                    inflight.insert(keys[i].clone());
                    claimed.push(i);
                }
            }
        }
        let cached = lanes.len() - claimed.len() - deferred.len();
        self.dispatch
            .cached
            .fetch_add(cached as u64, Ordering::Relaxed);
        self.dispatch
            .deferred
            .fetch_add(deferred.len() as u64, Ordering::Relaxed);
        batch_span.attr("cached", cached.to_string());
        batch_span.attr("claimed", claimed.len().to_string());
        batch_span.attr("deferred", deferred.len().to_string());
        self.obs
            .metrics
            .observe("cache.lookup.hit_lanes", cached as u64, LANE_BUCKETS);

        if !claimed.is_empty() {
            let claims = BatchClaims {
                inflight: &self.inflight,
                keys: claimed.iter().map(|&i| keys[i].clone()).collect(),
            };
            let subset: Vec<MixedLane> = claimed.iter().map(|&i| lanes[i]).collect();
            let solved = solve_batch(&subset);
            for (&i, m) in claimed.iter().zip(solved) {
                cache.store(keys[i].clone(), m);
                results[i] = Some(m);
            }
            drop(claims);
        }

        for i in deferred {
            let (cell, arc, point, seed) = &lanes[i];
            results[i] = Some(self.simulate(*cell, arc, point, seed));
        }

        results
            .into_iter()
            // slic-lint: allow(P1) -- structural: every index lands in exactly one of cached/claimed/deferred above, each of which fills its slot.
            .map(|m| m.expect("every lane resolved"))
            .collect()
    }

    /// Solves one batch of same-arc lanes as one worklist (see
    /// [`simulate_mixed_lane_batch`](Self::simulate_mixed_lane_batch)).
    fn simulate_lane_batch(
        &self,
        cell: Cell,
        arc: &TimingArc,
        lanes: &[Lane],
    ) -> Vec<TimingMeasurement> {
        let mixed: Vec<MixedLane> = lanes
            .iter()
            .map(|(point, seed)| (cell, *arc, *point, *seed))
            .collect();
        self.simulate_mixed_lane_batch(&mixed)
    }

    /// Fans a mixed lane list out across worker threads in batched chunks, preserving
    /// order.
    fn simulate_mixed_lanes(&self, lanes: &[MixedLane]) -> Vec<TimingMeasurement> {
        let chunks: Vec<&[MixedLane]> = lanes.chunks(batch_width(lanes.len())).collect();
        let per_chunk: Vec<Vec<TimingMeasurement>> = chunks
            .par_iter()
            .map(|chunk| self.simulate_mixed_lane_batch(chunk))
            .collect();
        per_chunk.into_iter().flatten().collect()
    }

    /// Fans a lane list out across worker threads in batched chunks, preserving order.
    fn simulate_lanes(
        &self,
        cell: Cell,
        arc: &TimingArc,
        lanes: &[Lane],
    ) -> Vec<TimingMeasurement> {
        let mixed: Vec<MixedLane> = lanes
            .iter()
            .map(|(point, seed)| (cell, *arc, *point, *seed))
            .collect();
        self.simulate_mixed_lanes(&mixed)
    }

    /// Simulates an arbitrary mixed worklist — lanes spanning cells, arcs, input points
    /// and process seeds — in parallel through the batched kernel.  Result `i`
    /// corresponds to `lanes[i]` and is bitwise identical to
    /// [`simulate`](Self::simulate) with the same coordinates: mega-batching across
    /// seeds or arcs changes only how the work is grouped, never what a run pays for or
    /// produces.
    pub fn simulate_mixed(&self, lanes: &[MixedLane]) -> Vec<TimingMeasurement> {
        self.simulate_mixed_lanes(lanes)
    }

    /// As [`simulate_mixed`](Self::simulate_mixed), but as **one** batched worklist on
    /// the calling thread — for callers that already parallelize at a coarser grain.
    pub fn simulate_mixed_batch(&self, lanes: &[MixedLane]) -> Vec<TimingMeasurement> {
        self.simulate_mixed_lane_batch(lanes)
    }

    /// Runs one transient simulation at the nominal process corner.
    pub fn simulate_nominal(
        &self,
        cell: Cell,
        arc: &TimingArc,
        point: &InputPoint,
    ) -> TimingMeasurement {
        self.simulate(cell, arc, point, &ProcessSample::nominal())
    }

    /// Simulates `arc` at every input point for a fixed process seed (the `.ALTER` sweep),
    /// in parallel through the batched kernel.  Result `i` corresponds to `points[i]` and
    /// is bitwise identical to [`simulate`](Self::simulate) at that point.
    pub fn sweep(
        &self,
        cell: Cell,
        arc: &TimingArc,
        points: &[InputPoint],
        seed: &ProcessSample,
    ) -> Vec<TimingMeasurement> {
        let lanes: Vec<Lane> = points.iter().map(|p| (*p, *seed)).collect();
        self.simulate_lanes(cell, arc, &lanes)
    }

    /// Simulates `arc` at every input point for a fixed process seed as **one** batched
    /// worklist on the calling thread — no thread fan-out.  This is the entry point for
    /// callers that already parallelize at a coarser grain (one worker per shard, per
    /// cell, or per seed) and want the batched kernel without nested parallelism.
    pub fn sweep_batch(
        &self,
        cell: Cell,
        arc: &TimingArc,
        points: &[InputPoint],
        seed: &ProcessSample,
    ) -> Vec<TimingMeasurement> {
        let lanes: Vec<Lane> = points.iter().map(|p| (*p, *seed)).collect();
        self.simulate_lane_batch(cell, arc, &lanes)
    }

    /// Simulates `arc` at every input point at the nominal corner, in parallel.
    pub fn sweep_nominal(
        &self,
        cell: Cell,
        arc: &TimingArc,
        points: &[InputPoint],
    ) -> Vec<TimingMeasurement> {
        self.sweep(cell, arc, points, &ProcessSample::nominal())
    }

    /// Monte Carlo ensemble: simulates `arc` at one input point under every process seed,
    /// in parallel through the batched kernel.  Element `i` of the result corresponds to
    /// `seeds[i]` and is bitwise identical to [`simulate`](Self::simulate) under that seed.
    pub fn monte_carlo(
        &self,
        cell: Cell,
        arc: &TimingArc,
        point: &InputPoint,
        seeds: &[ProcessSample],
    ) -> Vec<TimingMeasurement> {
        let lanes: Vec<Lane> = seeds.iter().map(|s| (*point, *s)).collect();
        self.simulate_lanes(cell, arc, &lanes)
    }

    /// Full statistical baseline: simulates every (input point, seed) pair through the
    /// batched kernel.
    ///
    /// The result is indexed `[point][seed]`.
    pub fn monte_carlo_sweep(
        &self,
        cell: Cell,
        arc: &TimingArc,
        points: &[InputPoint],
        seeds: &[ProcessSample],
    ) -> Vec<Vec<TimingMeasurement>> {
        let lanes: Vec<Lane> = points
            .iter()
            .flat_map(|p| seeds.iter().map(move |s| (*p, *s)))
            .collect();
        let flat = self.simulate_lanes(cell, arc, &lanes);
        let mut rows = Vec::with_capacity(points.len());
        let mut it = flat.into_iter();
        for _ in points {
            rows.push(it.by_ref().take(seeds.len()).collect());
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slic_cells::{CellKind, DriveStrength, Transition};
    use slic_units::{Farads, Seconds, Volts};

    fn engine() -> CharacterizationEngine {
        CharacterizationEngine::with_config(TechnologyNode::n14_finfet(), TransientConfig::fast())
            .expect("fast preset validates")
    }

    fn inv_fall() -> (Cell, TimingArc) {
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        (cell, TimingArc::new(cell, 0, Transition::Fall))
    }

    fn pt(sin_ps: f64, cload_ff: f64, vdd: f64) -> InputPoint {
        InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(cload_ff),
            Volts(vdd),
        )
    }

    #[test]
    fn simulation_counter_counts_every_run() {
        let eng = engine();
        let (cell, arc) = inv_fall();
        assert_eq!(eng.simulation_count(), 0);
        let _ = eng.simulate_nominal(cell, &arc, &pt(5.0, 2.0, 0.8));
        assert_eq!(eng.simulation_count(), 1);
        let points = vec![pt(2.0, 1.0, 0.8), pt(5.0, 2.0, 0.9), pt(9.0, 4.0, 0.7)];
        let _ = eng.sweep_nominal(cell, &arc, &points);
        assert_eq!(eng.simulation_count(), 4);
        assert_eq!(eng.counter().reset(), 4);
        assert_eq!(eng.simulation_count(), 0);
    }

    #[test]
    fn counter_is_shared_between_clones() {
        let eng = engine();
        let clone = eng.clone();
        let (cell, arc) = inv_fall();
        let _ = clone.simulate_nominal(cell, &arc, &pt(5.0, 2.0, 0.8));
        assert_eq!(eng.simulation_count(), 1);
    }

    #[test]
    fn ieff_does_not_count_as_a_simulation() {
        let eng = engine();
        let (_, arc) = inv_fall();
        let i = eng.ieff(&arc, &pt(5.0, 2.0, 0.8), &ProcessSample::nominal());
        assert!(i.value() > 0.0);
        assert_eq!(eng.simulation_count(), 0);
    }

    #[test]
    fn sweep_results_match_individual_runs() {
        let eng = engine();
        let (cell, arc) = inv_fall();
        let points = vec![pt(2.0, 1.0, 0.8), pt(8.0, 4.0, 0.7)];
        let swept = eng.sweep_nominal(cell, &arc, &points);
        for (p, m) in points.iter().zip(&swept) {
            let single = eng.simulate_nominal(cell, &arc, p);
            assert_eq!(*m, single, "sweep must be deterministic and ordered");
        }
    }

    #[test]
    fn monte_carlo_produces_spread() {
        let eng = engine();
        let (cell, arc) = inv_fall();
        let mut rng = StdRng::seed_from_u64(11);
        let seeds = eng.tech().variation().sample_n(&mut rng, 48);
        let ms = eng.monte_carlo(cell, &arc, &pt(5.0, 2.0, 0.8), &seeds);
        assert_eq!(ms.len(), 48);
        let delays: Vec<f64> = ms.iter().map(|m| m.delay.value()).collect();
        let mean = delays.iter().sum::<f64>() / delays.len() as f64;
        let sd = (delays.iter().map(|d| (d - mean).powi(2)).sum::<f64>()
            / (delays.len() - 1) as f64)
            .sqrt();
        assert!(sd > 0.0, "process variation must spread the delays");
        assert!(
            sd / mean < 0.5,
            "spread should stay moderate (cv = {})",
            sd / mean
        );
    }

    #[test]
    fn monte_carlo_sweep_shape() {
        let eng = engine();
        let (cell, arc) = inv_fall();
        let mut rng = StdRng::seed_from_u64(3);
        let seeds = eng.tech().variation().sample_n(&mut rng, 5);
        let points = vec![pt(2.0, 1.0, 0.8), pt(8.0, 4.0, 0.7), pt(5.0, 2.0, 0.9)];
        let grid = eng.monte_carlo_sweep(cell, &arc, &points, &seeds);
        assert_eq!(grid.len(), 3);
        assert!(grid.iter().all(|row| row.len() == 5));
        assert_eq!(eng.simulation_count(), 15);
    }

    #[test]
    fn input_space_uses_tech_supply_window() {
        let eng = engine();
        let space = eng.input_space();
        let (lo, hi) = space.vdd_range();
        assert_eq!((lo, hi), eng.tech().vdd_range());
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let bad = TransientConfig {
            dv_max_fraction: 0.5,
            ..TransientConfig::fast()
        };
        let err = CharacterizationEngine::with_config(TechnologyNode::n14_finfet(), bad)
            .expect_err("out-of-range dv_max_fraction must be rejected");
        assert!(err.to_string().contains("invalid transient configuration"));
        assert!(err.to_string().contains("dv_max_fraction"));
    }

    #[test]
    fn cache_short_circuits_repeat_simulations() {
        use crate::cache::InMemorySimCache;
        let cache = Arc::new(InMemorySimCache::new());
        let eng = engine().with_cache(cache.clone());
        let (cell, arc) = inv_fall();
        let point = pt(5.0, 2.0, 0.8);
        let first = eng.simulate_nominal(cell, &arc, &point);
        assert_eq!(eng.simulation_count(), 1);
        assert_eq!(cache.hits(), 0);
        let second = eng.simulate_nominal(cell, &arc, &point);
        assert_eq!(second, first, "cache must replay the archived measurement");
        assert_eq!(
            eng.simulation_count(),
            1,
            "cache hits must not count as simulations"
        );
        assert_eq!(cache.hits(), 1);
        // A different coordinate still simulates.
        let _ = eng.simulate_nominal(cell, &arc, &pt(6.0, 2.0, 0.8));
        assert_eq!(eng.simulation_count(), 2);
    }

    #[test]
    fn concurrent_identical_requests_solve_once() {
        use crate::cache::InMemorySimCache;
        let cache = Arc::new(InMemorySimCache::new());
        let eng = engine().with_cache(cache.clone());
        let (cell, arc) = inv_fall();
        // Sixteen workers racing on one coordinate: single-flight must collapse them to
        // one paid solve; the other fifteen are answered from the cache (counted hits).
        let points = vec![pt(5.0, 2.0, 0.8); 16];
        let measurements = eng.sweep_nominal(cell, &arc, &points);
        assert!(measurements.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(eng.simulation_count(), 1, "one coordinate, one solve");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 15);
    }

    #[test]
    fn monte_carlo_lanes_match_scalar_simulations_bitwise() {
        let eng = engine();
        let (cell, arc) = inv_fall();
        let mut rng = StdRng::seed_from_u64(7);
        let seeds = eng.tech().variation().sample_n(&mut rng, 9);
        let point = pt(5.0, 2.0, 0.8);
        let batched = eng.monte_carlo(cell, &arc, &point, &seeds);
        for (seed, m) in seeds.iter().zip(&batched) {
            let scalar = eng.simulate(cell, &arc, &point, seed);
            assert_eq!(
                *m, scalar,
                "batch lane must be bitwise equal to its scalar sim"
            );
        }
    }

    #[test]
    fn sweep_batch_matches_parallel_sweep() {
        let eng = engine();
        let (cell, arc) = inv_fall();
        let points = vec![pt(2.0, 1.0, 0.8), pt(5.0, 2.0, 0.9), pt(9.0, 4.0, 0.7)];
        let seed = ProcessSample::nominal();
        let single_thread = eng.sweep_batch(cell, &arc, &points, &seed);
        let fanned_out = eng.sweep(cell, &arc, &points, &seed);
        assert_eq!(single_thread, fanned_out);
        assert_eq!(eng.simulation_count(), 6, "both paths count every lane");
    }

    #[test]
    fn batched_monte_carlo_replays_from_cache() {
        use crate::cache::InMemorySimCache;
        let cache = Arc::new(InMemorySimCache::new());
        let eng = engine().with_cache(cache.clone());
        let (cell, arc) = inv_fall();
        let mut rng = StdRng::seed_from_u64(23);
        let seeds = eng.tech().variation().sample_n(&mut rng, 12);
        let point = pt(5.0, 2.0, 0.8);
        let first = eng.monte_carlo(cell, &arc, &point, &seeds);
        assert_eq!(eng.simulation_count(), 12);
        assert_eq!(cache.misses(), 12);
        let second = eng.monte_carlo(cell, &arc, &point, &seeds);
        assert_eq!(
            second, first,
            "warm batch must replay archived measurements"
        );
        assert_eq!(
            eng.simulation_count(),
            12,
            "warm batch pays zero simulations"
        );
        assert_eq!(cache.hits(), 12);
    }

    #[test]
    fn mixed_worklist_matches_scalar_simulations_bitwise() {
        let eng = engine();
        let inv = Cell::new(CellKind::Inv, DriveStrength::X1);
        let nand = Cell::new(CellKind::Nand2, DriveStrength::X2);
        let mut rng = StdRng::seed_from_u64(41);
        let seeds = eng.tech().variation().sample_n(&mut rng, 3);
        // Lanes spanning cells, arcs, input points and seeds in one worklist.
        let mut lanes: Vec<MixedLane> = Vec::new();
        for (cell, pin) in [(inv, 0), (nand, 1)] {
            for transition in [Transition::Fall, Transition::Rise] {
                let arc = TimingArc::new(cell, pin, transition);
                for (i, seed) in seeds.iter().enumerate() {
                    lanes.push((cell, arc, pt(2.0 + 3.0 * i as f64, 1.5, 0.8), *seed));
                }
            }
        }
        let batched = eng.simulate_mixed(&lanes);
        assert_eq!(eng.simulation_count(), lanes.len() as u64);
        let reference = engine();
        for ((cell, arc, point, seed), m) in lanes.iter().zip(&batched) {
            let scalar = reference.simulate(*cell, arc, point, seed);
            assert_eq!(
                *m, scalar,
                "mixed lane must be bitwise equal to its scalar sim"
            );
        }
    }

    #[test]
    fn dispatch_counters_cover_every_lane_exactly_once() {
        use crate::cache::InMemorySimCache;
        let cache = Arc::new(InMemorySimCache::new());
        let eng = engine().with_cache(cache.clone());
        let (cell, arc) = inv_fall();
        let nominal = ProcessSample::nominal();
        // A duplicated coordinate inside one batch exercises the deferral path
        // deterministically: the first copy claims the key, so by the time the second
        // copy is inspected under the in-flight lock it is "owned elsewhere" and must be
        // deferred to the scalar path.
        let lanes: Vec<MixedLane> = vec![
            (cell, arc, pt(5.0, 2.0, 0.8), nominal),
            (cell, arc, pt(9.0, 4.0, 0.7), nominal),
            (cell, arc, pt(5.0, 2.0, 0.8), nominal),
        ];
        let first = eng.simulate_mixed_batch(&lanes);
        assert_eq!(
            first[0], first[2],
            "deferred duplicate resolves to the same measurement"
        );
        let stats = eng.dispatch_stats();
        assert_eq!(stats.lanes_dispatched, 3);
        assert_eq!(stats.lanes_cached, 0);
        assert_eq!(stats.lanes_claimed, 2);
        assert_eq!(
            stats.lanes_deferred, 1,
            "the in-flight duplicate must be accounted as deferred"
        );
        assert_eq!(eng.simulation_count(), 2, "the duplicate is never re-paid");
        // A warm replay of the same batch resolves every lane from the cache.
        let second = eng.simulate_mixed_batch(&lanes);
        assert_eq!(second, first);
        let stats = eng.dispatch_stats();
        assert_eq!(stats.lanes_dispatched, 6);
        assert_eq!(stats.lanes_cached, 3);
        assert_eq!(stats.lanes_claimed, 2);
        assert_eq!(stats.lanes_deferred, 1);
        assert_eq!(
            stats.lanes_dispatched,
            stats.lanes_cached + stats.lanes_claimed + stats.lanes_deferred,
            "every dispatched lane lands in exactly one bucket"
        );
    }

    /// A backend that blocks every solve until the test opens a gate, so the test can
    /// pin one coordinate "in flight" while a batch on another thread dispatches it.
    #[derive(Debug)]
    struct GatedBackend {
        state: Mutex<(u64, bool)>,
        changed: Condvar,
        inner: LocalBackend,
    }

    impl GatedBackend {
        fn new() -> Self {
            Self {
                state: Mutex::new((0, false)),
                changed: Condvar::new(),
                inner: LocalBackend::new(),
            }
        }

        /// Blocks until `n` solve calls have entered the gate.
        fn wait_entered(&self, n: u64) {
            let mut state = self.state.lock().unwrap();
            while state.0 < n {
                state = self.changed.wait(state).unwrap();
            }
        }

        /// Opens the gate, releasing every blocked solve.
        fn release(&self) {
            self.state.lock().unwrap().1 = true;
            self.changed.notify_all();
        }
    }

    impl SimulationBackend for GatedBackend {
        fn name(&self) -> &str {
            "gated"
        }

        fn solve_batch(&self, requests: &[SimRequest]) -> Vec<crate::backend::SimResult> {
            let mut state = self.state.lock().unwrap();
            state.0 += 1;
            self.changed.notify_all();
            while !state.1 {
                state = self.changed.wait(state).unwrap();
            }
            drop(state);
            self.inner.solve_batch(requests)
        }
    }

    #[test]
    fn cross_thread_deferral_is_counted_and_bitwise_consistent() {
        use crate::cache::InMemorySimCache;
        let backend = Arc::new(GatedBackend::new());
        let cache = Arc::new(InMemorySimCache::new());
        let eng = engine()
            .with_cache(cache.clone())
            .with_backend(backend.clone());
        let (cell, arc) = inv_fall();
        let nominal = ProcessSample::nominal();
        let contended = pt(5.0, 2.0, 0.8);
        let fresh = pt(9.0, 4.0, 0.7);

        // Worker A claims the contended coordinate through the scalar path and blocks
        // inside the backend, holding its in-flight claim.
        let eng_a = eng.clone();
        let a = std::thread::spawn(move || eng_a.simulate(cell, &arc, &contended, &nominal));
        backend.wait_entered(1);

        // Worker B's cross-seed batch includes the contended coordinate: it must defer
        // that lane, claim and solve the fresh one, then wait for A's result.
        let eng_b = eng.clone();
        let b = std::thread::spawn(move || {
            eng_b.simulate_mixed_batch(&[
                (cell, arc, contended, nominal),
                (cell, arc, fresh, nominal),
            ])
        });
        backend.wait_entered(2);
        backend.release();

        let from_a = a.join().expect("worker A completes");
        let from_b = b.join().expect("worker B completes");
        assert_eq!(
            from_b[0], from_a,
            "the deferred lane resolves to the claim owner's measurement"
        );
        let stats = eng.dispatch_stats();
        assert_eq!(stats.lanes_dispatched, 2, "only the batch dispatches lanes");
        assert_eq!(stats.lanes_cached, 0);
        assert_eq!(stats.lanes_claimed, 1);
        assert_eq!(
            stats.lanes_deferred, 1,
            "the lane owned by worker A must be accounted as deferred"
        );
        assert_eq!(eng.simulation_count(), 2, "the contended lane is paid once");
    }

    /// A backend that counts the lanes it is asked to solve and delegates to the local
    /// kernel — proves the engine routes every paid solve (and only paid solves) through
    /// the backend boundary.
    #[derive(Debug, Default)]
    struct CountingBackend {
        lanes: AtomicU64,
        inner: LocalBackend,
    }

    impl SimulationBackend for CountingBackend {
        fn name(&self) -> &str {
            "counting"
        }

        fn solve_batch(&self, requests: &[SimRequest]) -> Vec<crate::backend::SimResult> {
            self.lanes
                .fetch_add(requests.len() as u64, Ordering::Relaxed);
            self.inner.solve_batch(requests)
        }
    }

    #[test]
    fn backend_sees_every_paid_solve_and_no_cache_hit() {
        use crate::cache::InMemorySimCache;
        let backend = Arc::new(CountingBackend::default());
        let cache = Arc::new(InMemorySimCache::new());
        let eng = engine()
            .with_cache(cache.clone())
            .with_backend(backend.clone());
        assert_eq!(eng.backend().name(), "counting");
        let (cell, arc) = inv_fall();
        let points = vec![pt(2.0, 1.0, 0.8), pt(5.0, 2.0, 0.9), pt(9.0, 4.0, 0.7)];
        let first = eng.sweep_nominal(cell, &arc, &points);
        assert_eq!(backend.lanes.load(Ordering::Relaxed), 3);
        assert_eq!(eng.simulation_count(), 3);
        // Warm replay: answered from the cache, so the backend must not be consulted.
        let second = eng.sweep_nominal(cell, &arc, &points);
        assert_eq!(second, first);
        assert_eq!(
            backend.lanes.load(Ordering::Relaxed),
            3,
            "cache hits bypass the backend"
        );
        // And a backend-routed lane is bitwise identical to the default local backend.
        let local = engine().sweep_nominal(cell, &arc, &points);
        assert_eq!(first, local);
    }

    #[test]
    fn shared_counter_aggregates_across_engines() {
        let counter = SimulationCounter::new();
        let a = engine().with_shared_counter(counter.clone());
        let b = CharacterizationEngine::with_config(
            TechnologyNode::n16_finfet(),
            TransientConfig::fast(),
        )
        .expect("fast preset validates")
        .with_shared_counter(counter.clone());
        let (cell, arc) = inv_fall();
        let _ = a.simulate_nominal(cell, &arc, &pt(5.0, 2.0, 0.8));
        let _ = b.simulate_nominal(cell, &arc, &pt(5.0, 2.0, 0.8));
        assert_eq!(counter.count(), 2);
    }
}
