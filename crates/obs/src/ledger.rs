//! The cross-run ledger: an append-only JSON-lines file of [`RunRecord`]s.
//!
//! Every `learn`/`characterize` run can append one line to `runs.jsonl` — what was
//! run (config fingerprint, seed, profile, backend), what it cost (wall time, sims
//! paid vs served from cache), what it produced (artifact content hash) and the full
//! [`MetricsSnapshot`].  `slic history` reads the ledger back, aligns records by
//! fingerprint and diffs the last two runs of the same configuration — the substrate
//! that lets CI catch a cache-hit-rate or farm-latency regression between PRs.
//!
//! The file discipline is exactly the one `DiskSimCache` proved out: writers take an
//! exclusive advisory flock, truncate a torn final line left by a crashed writer,
//! then append whole lines; readers salvage every parseable line and count the rest
//! as dropped rather than refusing the file.  Like everything in `slic-obs`, the
//! ledger is display-only by construction — no result path reads it, and artifact
//! bytes are identical with the ledger on or off (CI `cmp`-gates that).

use crate::metrics::{Histogram, MetricsSnapshot};
use crate::profile::{parse_json, Json};
use crate::trace::escape_json;
use std::fmt::Write as _;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Schema version stamped on every ledger line.
pub const LEDGER_SCHEMA: u64 = 1;

/// One run, as remembered across runs.
///
/// `seed`, `fingerprint` and `artifact_hash` are carried as strings on the wire: the
/// JSON layer parses numbers as `f64`, which is only exact up to 2^53, and a 64-bit
/// seed or hash must round-trip bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// `"learn"` or `"characterize"`.
    pub kind: String,
    /// [`ResolvedConfig::fingerprint`]-style 16-hex-digit configuration identity;
    /// records diff only against records with the same fingerprint.
    pub fingerprint: String,
    /// The run seed.
    pub seed: u64,
    /// Run profile name (`quick` / `signoff` / ...).
    pub profile: String,
    /// `"local"` or `"farm"` — kept for display; the fingerprint deliberately
    /// excludes it because artifacts are byte-identical across backends.
    pub backend: String,
    /// Wall duration of the whole command, monotonic-clock nanoseconds.
    pub wall_ns: u64,
    /// Simulations actually paid for (engine solves).
    pub sims_paid: u64,
    /// Simulations served from the cache instead.
    pub sims_cached: u64,
    /// Content hash of the produced artifact JSON (model database for `learn`,
    /// run artifact for `characterize`) — two runs of one fingerprint must match.
    pub artifact_hash: String,
    /// The full end-of-run metrics snapshot.
    pub snapshot: MetricsSnapshot,
}

impl RunRecord {
    /// Encodes the record as one JSON line (no trailing newline).
    ///
    /// The metrics snapshot is flattened to the same `name -> string` attribute map
    /// the end-of-run `metrics` trace event uses: counters as decimal strings,
    /// histograms via [`Histogram::encode`].
    pub fn to_line(&self) -> String {
        let mut line = String::with_capacity(256);
        let _ = write!(
            line,
            "{{\"type\":\"run\",\"schema\":{},\"kind\":\"{}\",\"fingerprint\":\"{}\",\
             \"seed\":\"{:016x}\",\"profile\":\"{}\",\"backend\":\"{}\",\"wall_ns\":{},\
             \"sims_paid\":{},\"sims_cached\":{},\"artifact_hash\":\"{}\",\"metrics\":{{",
            LEDGER_SCHEMA,
            escape_json(&self.kind),
            escape_json(&self.fingerprint),
            self.seed,
            escape_json(&self.profile),
            escape_json(&self.backend),
            self.wall_ns,
            self.sims_paid,
            self.sims_cached,
            escape_json(&self.artifact_hash),
        );
        for (index, (name, value)) in self.snapshot.attrs().iter().enumerate() {
            if index > 0 {
                line.push(',');
            }
            let _ = write!(line, "\"{}\":\"{}\"", escape_json(name), escape_json(value));
        }
        line.push_str("}}");
        line
    }

    /// Decodes one parsed ledger object; `None` on anything that is not a complete
    /// `type:"run"` record (the caller counts those as dropped).
    pub fn decode(json: &Json) -> Option<Self> {
        if json.get("type")?.as_str()? != "run" {
            return None;
        }
        // Future schemas may add fields; refuse only records we cannot represent.
        if json.get("schema")?.as_u64()? > LEDGER_SCHEMA {
            return None;
        }
        let metrics = match json.get("metrics")? {
            Json::Obj(entries) => entries,
            _ => return None,
        };
        let mut snapshot = MetricsSnapshot::default();
        for (name, value) in metrics {
            let text = match value {
                Json::Str(text) => text,
                _ => return None,
            };
            // Counters are pure decimal strings; anything else must decode as an
            // encoded histogram.  The two formats cannot collide.
            if let Ok(count) = text.parse::<u64>() {
                snapshot.counters.push((name.clone(), count));
            } else {
                snapshot
                    .histograms
                    .push((name.clone(), Histogram::decode(text)?));
            }
        }
        snapshot.counters.sort();
        snapshot.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Some(Self {
            kind: json.get("kind")?.as_str()?.to_string(),
            fingerprint: json.get("fingerprint")?.as_str()?.to_string(),
            seed: u64::from_str_radix(json.get("seed")?.as_str()?, 16).ok()?,
            profile: json.get("profile")?.as_str()?.to_string(),
            backend: json.get("backend")?.as_str()?.to_string(),
            wall_ns: json.get("wall_ns")?.as_u64()?,
            sims_paid: json.get("sims_paid")?.as_u64()?,
            sims_cached: json.get("sims_cached")?.as_u64()?,
            artifact_hash: json.get("artifact_hash")?.as_str()?.to_string(),
            snapshot,
        })
    }

    /// Looks up a counter in the snapshot by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.snapshot
            .counters
            .iter()
            .find(|(counter, _)| counter == name)
            .map(|(_, value)| *value)
    }
}

/// Appends one record to the ledger at `path`, creating the file if needed.
///
/// Mirrors `DiskSimCache::flush`: exclusive advisory flock, torn-tail truncation,
/// then one whole line plus newline — so concurrent same-host runs (e.g. a CI matrix
/// sharing one ledger) interleave records, never bytes.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be opened, locked or
/// appended; the run itself is unaffected (the ledger is telemetry, not a result).
pub fn append(path: &Path, record: &RunRecord) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .read(true)
        .append(true)
        .open(path)?;
    file.lock()?;
    truncate_torn_tail(&mut file)?;
    let mut line = record.to_line();
    line.push('\n');
    file.write_all(line.as_bytes())?;
    file.flush()?;
    // Closing the handle releases the lock.
    Ok(())
}

/// Truncates a torn final line (no trailing newline) off the ledger.
///
/// Called under the exclusive append lock: any live writer finishes its whole line —
/// trailing newline included — before releasing the lock, so a non-newline tail can
/// only be the leftover of a crashed writer and is safe to drop.
fn truncate_torn_tail(file: &mut std::fs::File) -> std::io::Result<()> {
    const CHUNK: u64 = 64 * 1024;
    let len = file.metadata()?.len();
    let mut scanned = 0u64;
    // Scan backwards for the last newline; keep everything up to and including it.
    while scanned < len {
        let chunk = CHUNK.min(len - scanned);
        file.seek(SeekFrom::Start(len - scanned - chunk))?;
        let mut buf = vec![0u8; chunk as usize];
        file.read_exact(&mut buf)?;
        if scanned == 0 && buf.last() == Some(&b'\n') {
            return Ok(());
        }
        if let Some(pos) = buf.iter().rposition(|&b| b == b'\n') {
            file.set_len(len - scanned - chunk + pos as u64 + 1)?;
            return Ok(());
        }
        scanned += chunk;
    }
    // No newline anywhere: the whole file is one torn line (or empty).
    file.set_len(0)?;
    Ok(())
}

/// A salvaged ledger: every parseable record plus a count of lines that were not.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedLedger {
    /// Records in file order (oldest first).
    pub records: Vec<RunRecord>,
    /// Lines that failed to parse or decode — a healthy ledger has zero.
    pub dropped: usize,
}

/// Parses ledger text line by line, salvaging what parses and counting the rest.
pub fn parse_ledger(text: &str) -> ParsedLedger {
    let mut parsed = ParsedLedger::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_json(line).ok().as_ref().and_then(RunRecord::decode) {
            Some(record) => parsed.records.push(record),
            None => parsed.dropped += 1,
        }
    }
    parsed
}

/// Reads and parses the ledger at `path` under a shared advisory lock.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be opened or read.
pub fn load(path: &Path) -> std::io::Result<ParsedLedger> {
    let file = std::fs::File::open(path)?;
    file.lock_shared()?;
    let mut text = String::new();
    (&file).read_to_string(&mut text)?;
    Ok(parse_ledger(&text))
}

/// FNV-1a 64 over `bytes`, finished with a splitmix avalanche, rendered as 16 hex
/// digits — the workspace's standard content-identity hash (work-unit sharding uses
/// the same construction).  Used for both config fingerprints and artifact hashes.
pub fn content_hash(bytes: &[u8]) -> String {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Splitmix avalanche so nearby inputs land far apart.
    hash ^= hash >> 30;
    hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hash ^= hash >> 27;
    hash = hash.wrapping_mul(0x94d0_49bb_1331_11eb);
    hash ^= hash >> 31;
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_record(seed: u64) -> RunRecord {
        let metrics = MetricsRegistry::new();
        metrics.counter_set("cache.hits", 12);
        metrics.counter_set("cache.misses", 3);
        metrics.observe("engine.batch_lanes", 4, &[1, 2, 4, 8]);
        RunRecord {
            kind: "characterize".to_string(),
            fingerprint: "00c0ffee00c0ffee".to_string(),
            seed,
            profile: "quick".to_string(),
            backend: "local".to_string(),
            wall_ns: 123_456_789,
            sims_paid: 40,
            sims_cached: 12,
            artifact_hash: content_hash(b"artifact"),
            snapshot: metrics.snapshot(),
        }
    }

    #[test]
    fn record_round_trips_through_a_line() {
        let record = sample_record(0xdead_beef_dead_beef);
        let parsed = parse_json(&record.to_line()).expect("line is valid JSON");
        let decoded = RunRecord::decode(&parsed).expect("line decodes");
        assert_eq!(decoded, record);
    }

    #[test]
    fn seed_survives_beyond_f64_precision() {
        // 2^53 + 1 is the first integer a double cannot represent.
        let record = sample_record((1u64 << 53) + 1);
        let parsed = parse_json(&record.to_line()).expect("valid JSON");
        let decoded = RunRecord::decode(&parsed).expect("decodes");
        assert_eq!(decoded.seed, (1u64 << 53) + 1);
    }

    #[test]
    fn append_and_load_round_trip_with_torn_tail_salvage() {
        let dir = std::env::temp_dir().join(format!(
            "slic-ledger-test-{}-{}",
            std::process::id(),
            "roundtrip"
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("runs.jsonl");
        let _ = std::fs::remove_file(&path);

        append(&path, &sample_record(1)).expect("first append");
        append(&path, &sample_record(2)).expect("second append");
        // Simulate a crashed writer: a torn line with no trailing newline.
        {
            use std::io::Write as _;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("open for tearing");
            file.write_all(b"{\"type\":\"run\",\"schema\":1,\"kin")
                .expect("torn tail");
        }
        // The next append truncates the torn tail before writing.
        append(&path, &sample_record(3)).expect("append after tear");
        let ledger = load(&path).expect("load");
        assert_eq!(ledger.dropped, 0);
        assert_eq!(
            ledger.records.iter().map(|r| r.seed).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loader_salvages_around_corrupt_interior_lines() {
        let good = sample_record(7).to_line();
        let text = format!("{good}\nnot json at all\n{{\"type\":\"other\"}}\n{good}\n");
        let ledger = parse_ledger(&text);
        assert_eq!(ledger.records.len(), 2);
        assert_eq!(ledger.dropped, 2);
    }

    #[test]
    fn future_schema_records_are_dropped_not_misread() {
        let line = sample_record(1)
            .to_line()
            .replace("\"schema\":1", "\"schema\":99");
        let parsed = parse_json(&line).expect("valid JSON");
        assert_eq!(RunRecord::decode(&parsed), None);
    }

    #[test]
    fn content_hash_is_stable_and_collision_averse() {
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
        assert_eq!(content_hash(b"abc").len(), 16);
    }
}
