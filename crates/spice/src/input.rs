//! The library input space `ξ = (Sin, Cload, Vdd)` and its sampling plans.

use rand::Rng;
use serde::{Deserialize, Serialize};
use slic_stats::sampling;
use slic_units::{Farads, Seconds, Volts};
use std::fmt;

/// One operating condition of a timing arc: input slew, output load and supply voltage.
///
/// This is the `ξ` vector of the paper.  Temperature and other axes could be added the same
/// way but are not needed for any of the reproduced experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InputPoint {
    /// Input transition time (slew) `Sin`.
    pub sin: Seconds,
    /// Output load capacitance `Cload`.
    pub cload: Farads,
    /// Supply voltage `Vdd`.
    pub vdd: Volts,
}

impl InputPoint {
    /// Creates an input point.
    ///
    /// # Panics
    ///
    /// Panics if any component is non-positive or non-finite.
    pub fn new(sin: Seconds, cload: Farads, vdd: Volts) -> Self {
        assert!(
            sin.value() > 0.0 && sin.is_finite(),
            "input slew must be positive and finite"
        );
        assert!(
            cload.value() > 0.0 && cload.is_finite(),
            "load capacitance must be positive and finite"
        );
        assert!(
            vdd.value() > 0.0 && vdd.is_finite(),
            "supply voltage must be positive and finite"
        );
        Self { sin, cload, vdd }
    }

    /// Creates an input point from raw SI values (seconds, farads, volts).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`InputPoint::new`].
    pub fn from_raw(sin_s: f64, cload_f: f64, vdd_v: f64) -> Self {
        Self::new(Seconds(sin_s), Farads(cload_f), Volts(vdd_v))
    }

    /// Returns the point as a `[sin, cload, vdd]` array of raw SI values.
    pub fn to_array(&self) -> [f64; 3] {
        [self.sin.value(), self.cload.value(), self.vdd.value()]
    }
}

impl fmt::Display for InputPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(Sin = {}, Cload = {}, Vdd = {})",
            self.sin, self.cload, self.vdd
        )
    }
}

/// The axis-aligned box of admissible input points for a characterization campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InputSpace {
    sin_min: Seconds,
    sin_max: Seconds,
    cload_min: Farads,
    cload_max: Farads,
    vdd_min: Volts,
    vdd_max: Volts,
}

impl InputSpace {
    /// Creates an input space from per-axis ranges.
    ///
    /// # Panics
    ///
    /// Panics if any range is inverted or has a non-positive lower bound.
    pub fn new(
        sin_range: (Seconds, Seconds),
        cload_range: (Farads, Farads),
        vdd_range: (Volts, Volts),
    ) -> Self {
        assert!(
            sin_range.0.value() > 0.0 && sin_range.0 <= sin_range.1,
            "invalid slew range"
        );
        assert!(
            cload_range.0.value() > 0.0 && cload_range.0 <= cload_range.1,
            "invalid load range"
        );
        assert!(
            vdd_range.0.value() > 0.0 && vdd_range.0 <= vdd_range.1,
            "invalid supply range"
        );
        Self {
            sin_min: sin_range.0,
            sin_max: sin_range.1,
            cload_min: cload_range.0,
            cload_max: cload_range.1,
            vdd_min: vdd_range.0,
            vdd_max: vdd_range.1,
        }
    }

    /// The input space used throughout the paper's validation: slews of 1–15 ps, loads of
    /// 0.3–6 fF and the supply range of the given technology's operating window.
    pub fn paper_space(vdd_range: (Volts, Volts)) -> Self {
        Self::new(
            (
                Seconds::from_picoseconds(1.0),
                Seconds::from_picoseconds(15.0),
            ),
            (Farads::from_femtofarads(0.3), Farads::from_femtofarads(6.0)),
            vdd_range,
        )
    }

    /// Input-slew range.
    pub fn sin_range(&self) -> (Seconds, Seconds) {
        (self.sin_min, self.sin_max)
    }

    /// Load-capacitance range.
    pub fn cload_range(&self) -> (Farads, Farads) {
        (self.cload_min, self.cload_max)
    }

    /// Supply-voltage range.
    pub fn vdd_range(&self) -> (Volts, Volts) {
        (self.vdd_min, self.vdd_max)
    }

    /// Returns `true` when `point` lies inside the box (inclusive bounds).
    pub fn contains(&self, point: &InputPoint) -> bool {
        point.sin >= self.sin_min
            && point.sin <= self.sin_max
            && point.cload >= self.cload_min
            && point.cload <= self.cload_max
            && point.vdd >= self.vdd_min
            && point.vdd <= self.vdd_max
    }

    /// The centre of the box.
    pub fn center(&self) -> InputPoint {
        InputPoint::new(
            self.sin_min.lerp(self.sin_max, 0.5),
            self.cload_min.lerp(self.cload_max, 0.5),
            self.vdd_min.lerp(self.vdd_max, 0.5),
        )
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![
            (self.sin_min.value(), self.sin_max.value()),
            (self.cload_min.value(), self.cload_max.value()),
            (self.vdd_min.value(), self.vdd_max.value()),
        ]
    }

    fn from_coords(coords: &[f64]) -> InputPoint {
        InputPoint::from_raw(coords[0], coords[1], coords[2])
    }

    /// Draws `n` points uniformly at random — the paper's 1000-point validation spread
    /// (Fig. 5).
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<InputPoint> {
        sampling::uniform_box(rng, &self.bounds(), n)
            .iter()
            .map(|c| Self::from_coords(c))
            .collect()
    }

    /// Draws an `n`-point Latin hypercube sample — the fitting conditions `ξ_F` used by the
    /// proposed method, which need good coverage at very small `n`.
    pub fn sample_latin_hypercube<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
    ) -> Vec<InputPoint> {
        sampling::latin_hypercube(rng, &self.bounds(), n)
            .iter()
            .map(|c| Self::from_coords(c))
            .collect()
    }

    /// Builds the classical LUT characterization grid with the given number of levels per
    /// axis (slew × load × supply full factorial).
    pub fn lut_grid(
        &self,
        sin_levels: usize,
        cload_levels: usize,
        vdd_levels: usize,
    ) -> Vec<InputPoint> {
        sampling::full_factorial(&self.bounds(), &[sin_levels, cload_levels, vdd_levels])
            .iter()
            .map(|c| Self::from_coords(c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> InputSpace {
        InputSpace::paper_space((Volts(0.65), Volts(1.0)))
    }

    #[test]
    fn input_point_construction_and_display() {
        let p = InputPoint::from_raw(5.09e-12, 1.67e-15, 0.734);
        assert!((p.sin.picoseconds() - 5.09).abs() < 1e-9);
        assert!((p.cload.femtofarads() - 1.67).abs() < 1e-9);
        let s = format!("{p}");
        assert!(s.contains("Sin"));
        assert_eq!(p.to_array()[2], 0.734);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn nonpositive_slew_rejected() {
        let _ = InputPoint::from_raw(0.0, 1e-15, 0.8);
    }

    #[test]
    fn space_contains_and_center() {
        let s = space();
        assert!(s.contains(&s.center()));
        assert!(!s.contains(&InputPoint::from_raw(100e-12, 1e-15, 0.8)));
        assert!(!s.contains(&InputPoint::from_raw(5e-12, 1e-15, 1.3)));
        let c = s.center();
        assert!((c.vdd.value() - 0.825).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid supply range")]
    fn inverted_vdd_range_rejected() {
        let _ = InputSpace::paper_space((Volts(1.0), Volts(0.65)));
    }

    #[test]
    fn uniform_sampling_stays_inside() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(5);
        let pts = s.sample_uniform(&mut rng, 1000);
        assert_eq!(pts.len(), 1000);
        assert!(pts.iter().all(|p| s.contains(p)));
    }

    #[test]
    fn latin_hypercube_covers_axes() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(7);
        let pts = s.sample_latin_hypercube(&mut rng, 8);
        assert_eq!(pts.len(), 8);
        assert!(pts.iter().all(|p| s.contains(p)));
        // All slews distinct (one per stratum).
        let mut slews: Vec<f64> = pts.iter().map(|p| p.sin.value()).collect();
        slews.sort_by(|a, b| a.partial_cmp(b).unwrap());
        slews.dedup_by(|a, b| (*a - *b).abs() < 1e-18);
        assert_eq!(slews.len(), 8);
    }

    #[test]
    fn lut_grid_is_full_factorial() {
        let s = space();
        let grid = s.lut_grid(5, 4, 3);
        assert_eq!(grid.len(), 60);
        assert!(grid.iter().all(|p| s.contains(p)));
        // Corners are included.
        assert!(grid.iter().any(|p| p.sin == s.sin_range().0
            && p.cload == s.cload_range().0
            && p.vdd == s.vdd_range().0));
    }

    #[test]
    fn serde_round_trip() {
        let p = InputPoint::from_raw(5e-12, 2e-15, 0.9);
        let json = serde_json_like(&p);
        assert!(json.contains("sin"));
    }

    fn serde_json_like(p: &InputPoint) -> String {
        // Serialization itself is exercised via serde's derive; here we only confirm the
        // Serialize impl is usable through a concrete format-independent check.
        format!(
            "{{\"sin\":{},\"cload\":{},\"vdd\":{}}}",
            p.sin.value(),
            p.cload.value(),
            p.vdd.value()
        )
    }
}
