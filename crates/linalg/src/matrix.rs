//! Owned dense row-major matrices.

use crate::{Cholesky, LinalgError, Lu, Vector};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// An owned, dense, row-major matrix of `f64`.
///
/// Sized for the workspace's needs: parameter covariances (4×4), Gauss–Newton Jacobians
/// (tens of rows × 4 columns) and design matrices for the LUT baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let mut m = Self::zeros(diag.len(), diag.len());
        for (i, d) in diag.iter().enumerate() {
            m[(i, i)] = *d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the diagonal as a vector (length `min(rows, cols)`).
    pub fn diagonal(&self) -> Vector {
        Vector::from_fn(self.rows.min(self.cols), |i| self[(i, i)])
    }

    /// Returns row `i` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> Vector {
        assert!(i < self.rows, "row index out of bounds");
        Vector::from_slice(&self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Returns column `j` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn column(&self, j: usize) -> Vector {
        assert!(j < self.cols, "column index out of bounds");
        Vector::from_fn(self.rows, |i| self[(i, j)])
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `A · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mat_vec(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.cols, "mat_vec dimension mismatch");
        Vector::from_fn(self.rows, |i| {
            (0..self.cols).map(|j| self[(i, j)] * x[j]).sum()
        })
    }

    /// Matrix–matrix product `A · B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn mat_mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "mat_mul dimension mismatch");
        Matrix::from_fn(self.rows, other.cols, |i, j| {
            (0..self.cols).map(|k| self[(i, k)] * other[(k, j)]).sum()
        })
    }

    /// Gram matrix `Aᵀ · A` (always symmetric positive semi-definite).
    pub fn gram(&self) -> Matrix {
        self.transpose().mat_mul(self)
    }

    /// Element-wise scaling by a constant.
    pub fn scale(&self, factor: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * factor).collect(),
        }
    }

    /// Returns `self + factor · I`.
    ///
    /// Used for Levenberg–Marquardt damping and covariance regularization.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&self, factor: f64) -> Matrix {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        let mut m = self.clone();
        for i in 0..self.rows {
            m[(i, i)] += factor;
        }
        m
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute asymmetry `max |A_ij - A_ji|`; zero for non-square matrices is not
    /// defined, so this panics instead.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn asymmetry(&self) -> f64 {
        assert!(self.is_square(), "asymmetry requires a square matrix");
        let mut worst: f64 = 0.0;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Returns a symmetrized copy `(A + Aᵀ)/2`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrized(&self) -> Matrix {
        assert!(self.is_square(), "symmetrized requires a square matrix");
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            0.5 * (self[(i, j)] + self[(j, i)])
        })
    }

    /// Returns `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Computes the Cholesky decomposition of this (symmetric positive-definite) matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a non-positive pivot is encountered,
    /// and [`LinalgError::DimensionMismatch`] if the matrix is not square.
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        Cholesky::decompose(self)
    }

    /// Computes the LU decomposition (partial pivoting) of this square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] for numerically singular matrices and
    /// [`LinalgError::DimensionMismatch`] if the matrix is not square.
    pub fn lu(&self) -> Result<Lu, LinalgError> {
        Lu::decompose(self)
    }

    /// Solves `A x = b` via LU decomposition.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Matrix::lu`], plus [`LinalgError::DimensionMismatch`] when
    /// `b.len() != rows`.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: format!("solve: {}x{} vs rhs {}", self.rows, self.cols, b.len()),
            });
        }
        Ok(self.lu()?.solve(b))
    }

    /// Computes the matrix inverse via LU decomposition.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Matrix::lu`].
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let lu = self.lu()?;
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = Vector::zeros(n);
            e[j] = 1.0;
            let col = lu.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6e}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix addition dimension mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix subtraction dimension mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<&Vector> for &Matrix {
    type Output = Vector;
    fn mul(self, rhs: &Vector) -> Vector {
        self.mat_vec(rhs)
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.mat_mul(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd2() -> Matrix {
        Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])
    }

    #[test]
    fn constructors() {
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        let d = Matrix::from_diagonal(&[1.0, 2.0]);
        assert_eq!(d[(1, 1)], 2.0);
        let f = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(f[(1, 2)], 5.0);
        assert_eq!(f.rows(), 2);
        assert_eq!(f.cols(), 3);
        assert!(!f.is_square());
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn rows_columns_diagonal() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(0).as_slice(), &[1.0, 2.0]);
        assert_eq!(m.column(1).as_slice(), &[2.0, 4.0]);
        assert_eq!(m.diagonal().as_slice(), &[1.0, 4.0]);
    }

    #[test]
    fn transpose_and_products() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at[(2, 1)], 6.0);
        let x = Vector::from_slice(&[1.0, 0.0, -1.0]);
        assert_eq!(a.mat_vec(&x).as_slice(), &[-2.0, -2.0]);
        let prod = a.mat_mul(&at);
        assert_eq!(prod.rows(), 2);
        assert_eq!(prod[(0, 0)], 14.0);
        let g = a.gram();
        assert!(g.is_square());
        assert!(g.asymmetry() < 1e-12);
        // Operator sugar matches the named methods.
        assert_eq!((&a * &x).as_slice(), a.mat_vec(&x).as_slice());
        assert_eq!((&a * &at)[(0, 0)], 14.0);
    }

    #[test]
    fn add_sub_scale_diagonal() {
        let a = spd2();
        let b = Matrix::identity(2);
        assert_eq!((&a + &b)[(0, 0)], 5.0);
        assert_eq!((&a - &b)[(1, 1)], 2.0);
        assert_eq!(a.scale(2.0)[(0, 1)], 2.0);
        assert_eq!(a.add_diagonal(1.0)[(0, 0)], 5.0);
        assert!(a.norm_frobenius() > 0.0);
    }

    #[test]
    fn symmetrization() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(m.asymmetry() > 1.0);
        let s = m.symmetrized();
        assert!(s.asymmetry() < 1e-15);
        assert_eq!(s[(0, 1)], 1.0);
    }

    #[test]
    fn solve_and_inverse() {
        let a = spd2();
        let b = Vector::from_slice(&[1.0, 2.0]);
        let x = a.solve(&b).unwrap();
        let r = &a.mat_vec(&x) - &b;
        assert!(r.norm() < 1e-12);
        let inv = a.inverse().unwrap();
        let ident = a.mat_mul(&inv);
        assert!((&ident - &Matrix::identity(2)).norm_frobenius() < 1e-12);
    }

    #[test]
    fn solve_rejects_bad_rhs() {
        let a = spd2();
        let err = a.solve(&Vector::zeros(3)).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn finiteness_and_display() {
        let a = spd2();
        assert!(a.is_finite());
        let mut b = a.clone();
        b[(0, 0)] = f64::NAN;
        assert!(!b.is_finite());
        let text = format!("{a}");
        assert_eq!(text.lines().count(), 2);
    }

    proptest! {
        #[test]
        fn prop_transpose_involution(values in proptest::collection::vec(-1e3f64..1e3, 12)) {
            let m = Matrix::from_fn(3, 4, |i, j| values[i * 4 + j]);
            let back = m.transpose().transpose();
            prop_assert_eq!(m, back);
        }

        #[test]
        fn prop_matvec_linearity(values in proptest::collection::vec(-10f64..10.0, 9),
                                 x in proptest::collection::vec(-10f64..10.0, 3),
                                 y in proptest::collection::vec(-10f64..10.0, 3),
                                 s in -5f64..5.0) {
            let a = Matrix::from_fn(3, 3, |i, j| values[i * 3 + j]);
            let vx = Vector::from_slice(&x);
            let vy = Vector::from_slice(&y);
            let lhs = a.mat_vec(&vx.axpy(s, &vy));
            let rhs = a.mat_vec(&vx).axpy(s, &a.mat_vec(&vy));
            for i in 0..3 {
                prop_assert!((lhs[i] - rhs[i]).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_gram_is_symmetric_psd(values in proptest::collection::vec(-10f64..10.0, 12)) {
            let a = Matrix::from_fn(4, 3, |i, j| values[i * 3 + j]);
            let g = a.gram();
            prop_assert!(g.asymmetry() < 1e-9);
            // x^T G x = |A x|^2 >= 0 for a few probe vectors.
            for probe in [[1.0, 0.0, 0.0], [0.3, -0.7, 0.2], [1.0, 1.0, 1.0]] {
                let x = Vector::from_slice(&probe);
                let q = x.dot(&g.mat_vec(&x));
                prop_assert!(q >= -1e-9);
            }
        }
    }
}
