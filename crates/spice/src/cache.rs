//! Transient-simulation caching.
//!
//! A library-scale characterization run hits the same `(technology, arc, input point,
//! process seed)` coordinates repeatedly: the LUT baseline and the model-training stages
//! share grid corners, repeated runs of a resumable pipeline re-request identical sweeps,
//! and multi-metric work units re-simulate the same arc (one transient yields both delay
//! and slew).  A [`SimulationCache`] attached to a [`CharacterizationEngine`] short-circuits
//! those repeats: cache hits return the archived [`TimingMeasurement`] without running the
//! solver and **without incrementing the simulation counter**, so the counter keeps its
//! meaning of "transient simulations actually paid for".
//!
//! [`CharacterizationEngine`]: crate::engine::CharacterizationEngine

use crate::input::InputPoint;
use crate::measure::TimingMeasurement;
use crate::transient::TransientConfig;
use slic_cells::TimingArc;
use slic_device::ProcessSample;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The exact coordinates of one transient simulation.
///
/// Floating-point components are keyed by their bit patterns: two points are "the same"
/// only when they are bitwise identical, which is the right notion for caching replayed
/// deterministic campaigns (nearby-but-different points must not alias).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimKey {
    tech: String,
    arc: TimingArc,
    point: [u64; 3],
    seed: [u64; 7],
    config: [u64; 4],
}

impl SimKey {
    /// Builds the key for simulating `arc` at `point` under `seed` with `config` in the
    /// technology named `tech`.
    pub fn new(
        tech: &str,
        arc: &TimingArc,
        point: &InputPoint,
        seed: &ProcessSample,
        config: &TransientConfig,
    ) -> Self {
        Self {
            tech: tech.to_string(),
            arc: *arc,
            point: [
                point.sin.value().to_bits(),
                point.cload.value().to_bits(),
                point.vdd.value().to_bits(),
            ],
            seed: [
                seed.delta_vth_n.to_bits(),
                seed.delta_vth_p.to_bits(),
                seed.vx0_scale_n.to_bits(),
                seed.vx0_scale_p.to_bits(),
                seed.cinv_scale.to_bits(),
                seed.dibl_scale_n.to_bits(),
                seed.dibl_scale_p.to_bits(),
            ],
            config: [
                config.dv_max_fraction.to_bits(),
                config.min_steps_per_ramp as u64,
                config.max_time_factor.to_bits(),
                config.miller_fraction.to_bits(),
            ],
        }
    }
}

/// A concurrent store of completed transient simulations.
///
/// Implementations must be thread-safe: the engine consults the cache from rayon worker
/// threads.  `lookup` and `store` are intentionally split (no `or_insert_with`) so a miss
/// never holds a lock across the milliseconds-long transient solve.
pub trait SimulationCache: Send + Sync {
    /// The archived measurement for `key`, if present.
    fn lookup(&self, key: &SimKey) -> Option<TimingMeasurement>;

    /// Archives a completed measurement.
    fn store(&self, key: SimKey, measurement: TimingMeasurement);
}

const SHARDS: usize = 16;

/// A sharded in-memory [`SimulationCache`] with hit/miss accounting.
#[derive(Debug, Default)]
pub struct InMemorySimCache {
    shards: [Mutex<HashMap<SimKey, TimingMeasurement>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl InMemorySimCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that fell through to the solver so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of archived measurements.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Returns `true` when nothing is archived.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: &SimKey) -> &Mutex<HashMap<SimKey, TimingMeasurement>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }
}

impl SimulationCache for InMemorySimCache {
    fn lookup(&self, key: &SimKey) -> Option<TimingMeasurement> {
        let found = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
            .copied();
        match found {
            Some(m) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(m)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: SimKey, measurement: TimingMeasurement) {
        self.shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, measurement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slic_cells::{Cell, CellKind, DriveStrength, Transition};
    use slic_units::{Farads, Seconds, Volts};

    fn key(sin_ps: f64) -> SimKey {
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let point = InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(2.0),
            Volts(0.8),
        );
        SimKey::new(
            "n14",
            &arc,
            &point,
            &ProcessSample::nominal(),
            &TransientConfig::fast(),
        )
    }

    #[test]
    fn lookup_store_and_accounting() {
        let cache = InMemorySimCache::new();
        let m = TimingMeasurement::new(Seconds(1e-12), Seconds(2e-12));
        assert!(cache.lookup(&key(5.0)).is_none());
        cache.store(key(5.0), m);
        assert_eq!(cache.lookup(&key(5.0)), Some(m));
        assert!(cache.lookup(&key(6.0)).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn distinct_coordinates_do_not_alias() {
        let a = key(5.0);
        let b = key(5.000000001);
        assert_ne!(a, b, "bitwise-different points must have different keys");
    }
}
