//! The parallel pipeline runner: one shared engine, counter and cache; work units executed
//! with rayon; results streamed into a [`RunArtifact`].

use crate::artifact::{
    CharacterizedLibrary, KernelSection, RunArtifact, UnitResult, VariationSection, SCHEMA_VERSION,
};
use crate::config::ResolvedConfig;
use crate::error::PipelineError;
use crate::plan::{CharacterizationPlan, UnitKind, WorkUnit};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use slic::historical::{HistoricalLearner, HistoricalLearningConfig, HistoricalLearningResult};
use slic::nominal::MethodKind;
use slic_bayes::{
    HistoricalDatabase, MapExtractor, PrecisionConfig, PrecisionModel, PriorBuilder, TimingMetric,
};
use slic_cells::CellKind;
use slic_lut::LutBuilder;
use slic_obs::Observability;
use slic_spice::{
    CharacterizationEngine, DiskSimCache, InMemorySimCache, SimulationBackend, SimulationCache,
    SimulationCounter,
};
use slic_stats::distance::mean_relative_error_percent;
use slic_timing_model::{LeastSquaresFitter, TimingSample};
use slic_variation::{VariationExtractor, VariationTable};
// BTreeMap (not HashMap) everywhere a collection can feed an artifact: iteration order
// must be process-independent (lint rule D1).
use std::collections::BTreeMap;
use std::sync::Arc;

/// Executes characterization plans against one target technology.
///
/// All stages — historical learning, per-unit characterization, validation — run through a
/// single [`CharacterizationEngine`] clone family sharing one [`SimulationCounter`] and one
/// [`SimulationCache`], so the artifact reports one true cost total and repeated
/// coordinates are simulated once.
pub struct PipelineRunner {
    config: ResolvedConfig,
    engine: CharacterizationEngine,
    counter: SimulationCounter,
    cache: Arc<dyn SimulationCache>,
    obs: Observability,
}

impl PipelineRunner {
    /// Creates a runner with a fresh counter and cache.
    ///
    /// With a `cache_path` in the configuration the cache is a [`DiskSimCache`] opened
    /// (warm) from that file and flushed when the runner is dropped; otherwise it is a
    /// fresh [`InMemorySimCache`].
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Engine`] when the profile's transient configuration is
    /// invalid, or a [`PipelineError::Cache`] when the configured cache file cannot be
    /// opened.
    pub fn new(config: ResolvedConfig) -> Result<Self, PipelineError> {
        let cache = Self::open_cache(&config)?;
        Self::with_parts(config, cache, None)
    }

    /// Creates a runner reusing an existing (possibly warm) simulation cache — the
    /// repeated-run and shard-worker entry point.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Engine`] when the profile's transient configuration is
    /// invalid.
    pub fn with_cache(
        config: ResolvedConfig,
        cache: Arc<dyn SimulationCache>,
    ) -> Result<Self, PipelineError> {
        Self::with_parts(config, cache, None)
    }

    /// Creates a runner whose engines route every solve through `backend` (e.g. a
    /// `slic-farm` fleet), with the cache resolved from the configuration as in
    /// [`new`](Self::new).  The counter/cache/single-flight policy stays runner-side, so
    /// backends cannot change what a run pays for or produces — only where it executes.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Engine`] when the profile's transient configuration is
    /// invalid, or a [`PipelineError::Cache`] when the configured cache file cannot be
    /// opened.
    pub fn with_backend(
        config: ResolvedConfig,
        backend: Arc<dyn SimulationBackend>,
    ) -> Result<Self, PipelineError> {
        let cache = Self::open_cache(&config)?;
        Self::with_parts(config, cache, Some(backend))
    }

    /// Fully explicit construction: a (possibly warm) cache plus an optional backend.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Engine`] when the profile's transient configuration is
    /// invalid, or a [`PipelineError::Config`] when the configuration selects the farm
    /// backend but no backend instance is supplied — silently running a farm-configured
    /// plan in-process would be worse than failing (this crate cannot construct the
    /// fleet itself; build a `slic_farm::FarmBackend` and pass it, as the CLI does).
    pub fn with_parts(
        config: ResolvedConfig,
        cache: Arc<dyn SimulationCache>,
        backend: Option<Arc<dyn SimulationBackend>>,
    ) -> Result<Self, PipelineError> {
        if backend.is_none() && config.backend != crate::config::BackendChoice::Local {
            return Err(PipelineError::config(
                "the configuration selects the farm backend but no backend instance was \
                 supplied; construct the worker fleet (e.g. slic_farm::FarmBackend) and \
                 pass it via PipelineRunner::with_backend",
            ));
        }
        let counter = SimulationCounter::new();
        let mut engine =
            CharacterizationEngine::with_config(config.technology.clone(), config.transient)?
                .with_shared_counter(counter.clone())
                .with_cache(cache.clone());
        if let Some(backend) = backend {
            engine = engine.with_backend(backend);
        } else if config.simd {
            // resolve() only sets `simd` with the local backend, so a backend instance
            // and the SIMD flag are mutually exclusive here.
            engine = engine.with_backend(Arc::new(slic_spice::LocalBackend::with_simd(true)));
        }
        Ok(Self {
            config,
            engine,
            counter,
            cache,
            obs: Observability::default(),
        })
    }

    /// Attaches the display-only observability bundle, threading it through to the
    /// engine so batch/cache spans land in the same trace as the runner's stage spans.
    /// Tracing never feeds back into scheduling or results: a traced run's artifact is
    /// byte-identical to an untraced one (CI `cmp`-gates this).
    #[must_use]
    pub fn with_observability(mut self, obs: Observability) -> Self {
        self.engine = self.engine.with_observability(obs.clone());
        self.obs = obs;
        self
    }

    /// The observability bundle in use (disabled/no-op by default).
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// Opens the configured disk cache, or a fresh in-memory one.
    fn open_cache(config: &ResolvedConfig) -> Result<Arc<dyn SimulationCache>, PipelineError> {
        Ok(match &config.cache_path {
            Some(path) => Arc::new(DiskSimCache::open(path)?),
            None => Arc::new(InMemorySimCache::new()),
        })
    }

    /// The resolved configuration.
    pub fn config(&self) -> &ResolvedConfig {
        &self.config
    }

    /// The shared engine (bound to the target technology).
    pub fn engine(&self) -> &CharacterizationEngine {
        &self.engine
    }

    /// The shared simulation counter.
    pub fn counter(&self) -> &SimulationCounter {
        &self.counter
    }

    /// The shared simulation cache.
    pub fn cache(&self) -> &Arc<dyn SimulationCache> {
        &self.cache
    }

    /// Runs the historical learning stage over the configured historical nodes, through
    /// the shared counter and cache.
    pub fn learn(&self) -> HistoricalLearningResult {
        let _span = self.obs.trace.span(
            "learn",
            &[("nodes", self.config.historical.len().to_string())],
        );
        let learner = HistoricalLearner::new(HistoricalLearningConfig {
            grid_levels: self.config.profile.learning_grid(),
            transient: self.config.transient,
        });
        learner.learn_shared_with_backend(
            &self.config.historical,
            &self.config.library,
            &self.counter,
            Some(self.cache.clone()),
            Some(self.engine.backend().clone()),
        )
    }

    /// Executes every unit of `plan` in parallel against `database` and assembles the run
    /// artifact.  Units (and variation tables) are recorded in canonical identity order,
    /// so a merged shard set is bit-identical to the single-process artifact.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Config`] when a Bayesian unit is planned but the
    /// database lacks records for its metric, or when a Monte Carlo unit is planned but
    /// the configuration carries no variation section (a plan from a different config).
    pub fn characterize(
        &self,
        plan: &CharacterizationPlan,
        database: &HistoricalDatabase,
    ) -> Result<RunArtifact, PipelineError> {
        let root = self
            .obs
            .trace
            .span("characterize", &[("units", plan.units().len().to_string())]);
        let extractors = self.build_extractors(plan, database)?;
        if plan.units().iter().any(|u| u.kind == UnitKind::MonteCarlo)
            && self.config.variation.is_none()
        {
            return Err(PipelineError::config(
                "the plan contains Monte Carlo units but the runner's configuration has \
                 no variation section; enumerate the plan from the same resolved config \
                 the runner was built with",
            ));
        }
        // Unit spans run on rayon worker threads, where the root is not on the local
        // span stack — parent them explicitly so the profile tree stays connected.
        let root_id = root.id();
        self.obs.progress.begin(plan.units().len() as u64);
        let outcomes: Vec<Result<(UnitResult, Option<VariationTable>), PipelineError>> = plan
            .units()
            .par_iter()
            .map(|unit| {
                let _span = self.obs.trace.span_under(
                    root_id,
                    "unit",
                    &[
                        ("cell", unit.cell.name()),
                        ("arc", unit.arc.id()),
                        ("metric", unit.metric.to_string()),
                        ("method", format!("{:?}", unit.method)),
                    ],
                );
                let outcome = self.run_unit(unit, &extractors);
                // Absolute totals, not deltas: the shared counters already aggregate
                // across threads.
                self.obs
                    .progress
                    .unit_done(self.counter.count(), self.cache.hits());
                outcome
            })
            .collect();
        self.obs.progress.finish();
        let mut outcomes = outcomes
            .into_iter()
            .collect::<Result<Vec<_>, PipelineError>>()?;
        outcomes.sort_by_cached_key(|(unit, _)| unit.unit_id());
        let mut units = Vec::with_capacity(outcomes.len());
        let mut tables = Vec::new();
        for (unit, table) in outcomes {
            units.push(unit);
            tables.extend(table);
        }
        let variation = self.config.variation.as_ref().map(|vc| VariationSection {
            process_seeds: vc.process_seeds,
            sigma_corners: vc.sigma_corners.clone(),
            seed: vc.seed,
            tables,
        });
        let characterized = CharacterizedLibrary::from_units(
            &self.config.library_name,
            self.config.technology.name(),
            &units,
        );
        // The kernel section is recorded only for SIMD runs: default runs must keep
        // producing artifacts byte-identical to those written before the section existed.
        let kernel = if self.config.simd {
            self.engine.backend().kernel_stats().map(|stats| {
                let dispatch = self.engine.dispatch_stats();
                KernelSection {
                    simd: stats.simd,
                    sims: stats.sims,
                    steps: stats.steps,
                    rejected_steps: stats.rejected_steps,
                    device_evals: stats.device_evals,
                    quad_rounds: stats.quad_rounds,
                    active_lane_rounds: stats.active_lane_rounds,
                    lanes_dispatched: dispatch.lanes_dispatched,
                    lanes_cached: dispatch.lanes_cached,
                    lanes_claimed: dispatch.lanes_claimed,
                    lanes_deferred: dispatch.lanes_deferred,
                }
            })
        } else {
            None
        };
        Ok(RunArtifact {
            schema_version: SCHEMA_VERSION,
            library: self.config.library_name.clone(),
            technology: self.config.technology.name().to_string(),
            profile: self.config.profile.name().to_string(),
            seed: self.config.seed,
            planned_units: plan.planned_units(),
            units,
            characterized,
            total_simulations: self.counter.count(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            variation,
            kernel,
            // Attached by the caller (the CLI) after the run when the backend is a farm;
            // this crate cannot see through the `dyn SimulationBackend` it was handed.
            farm: None,
        })
    }

    /// The whole resumable flow in one call: learn, characterize, return both artifacts.
    ///
    /// # Errors
    ///
    /// Propagates plan and characterization errors.
    pub fn run(&self) -> Result<(HistoricalLearningResult, RunArtifact), PipelineError> {
        let plan = {
            let _span = self.obs.trace.span("plan.build", &[]);
            CharacterizationPlan::from_config(&self.config)?
        };
        let learning = self.learn();
        let artifact = self.characterize(&plan, &learning.database)?;
        Ok((learning, artifact))
    }

    /// Builds one MAP extractor per `(cell kind, metric)` pair the plan needs, so the
    /// prior/precision learning cost is paid once instead of per unit.
    fn build_extractors(
        &self,
        plan: &CharacterizationPlan,
        database: &HistoricalDatabase,
    ) -> Result<BTreeMap<(CellKind, TimingMetric), MapExtractor>, PipelineError> {
        let mut extractors = BTreeMap::new();
        for unit in plan.units() {
            if unit.method != MethodKind::ProposedBayesian {
                continue;
            }
            let key = (unit.cell.kind(), unit.metric);
            if extractors.contains_key(&key) {
                continue;
            }
            let prior = PriorBuilder::new()
                .build(database, unit.metric, Some(unit.cell.kind().name()))
                .or_else(|_| PriorBuilder::new().build(database, unit.metric, None))
                .map_err(|err| {
                    PipelineError::config(format!(
                        "cannot build a prior for {} / {}: {err} (run the learn stage first?)",
                        unit.cell.kind().name(),
                        unit.metric
                    ))
                })?;
            let precision = PrecisionModel::learn(
                database,
                unit.metric,
                &self.engine.input_space(),
                PrecisionConfig::default(),
            );
            extractors.insert(key, MapExtractor::new(prior, precision));
        }
        Ok(extractors)
    }

    /// Executes one work unit.  Nominal units sample, simulate (through the shared
    /// cache), fit and validate; Monte Carlo units sweep the export grid under every
    /// process seed and reduce to a moment table.
    fn run_unit(
        &self,
        unit: &WorkUnit,
        extractors: &BTreeMap<(CellKind, TimingMetric), MapExtractor>,
    ) -> Result<(UnitResult, Option<VariationTable>), PipelineError> {
        if unit.kind == UnitKind::MonteCarlo {
            return self.run_variation_unit(unit);
        }
        let k = self.config.training_count;
        let v = self.config.validation_points;
        let space = self.engine.input_space();
        let mut rng = StdRng::seed_from_u64(unit.sampling_seed(self.config.seed));
        let training_points = space.sample_latin_hypercube(&mut rng, k);
        let validation_points = space.sample_uniform(&mut rng, v);
        let nominal = slic_device::ProcessSample::nominal();

        let reference: Vec<f64> = self
            .engine
            .sweep_nominal(unit.cell, &unit.arc, &validation_points)
            .iter()
            .map(|m| unit.metric.pick(m))
            .collect();

        let (params, predictions) = match unit.method {
            MethodKind::ProposedBayesian | MethodKind::ProposedLse => {
                let measurements =
                    self.engine
                        .sweep_nominal(unit.cell, &unit.arc, &training_points);
                let samples: Vec<TimingSample> = training_points
                    .iter()
                    .zip(&measurements)
                    .map(|(p, m)| {
                        TimingSample::new(
                            *p,
                            self.engine.ieff(&unit.arc, p, &nominal),
                            slic_units::Seconds(unit.metric.pick(m)),
                        )
                    })
                    .collect();
                let params = if unit.method == MethodKind::ProposedBayesian {
                    extractors
                        .get(&(unit.cell.kind(), unit.metric))
                        .ok_or_else(|| {
                            PipelineError::config(format!(
                                "no prebuilt extractor for {} / {}; the plan and the \
                                 extractor table were built from different configs",
                                unit.cell.kind().name(),
                                unit.metric
                            ))
                        })?
                        .extract(&samples)
                        .params
                } else {
                    LeastSquaresFitter::new().fit(&samples).params
                };
                let predictions: Vec<f64> = validation_points
                    .iter()
                    .map(|p| {
                        params
                            .evaluate(p, self.engine.ieff(&unit.arc, p, &nominal))
                            .value()
                    })
                    .collect();
                (Some(params), predictions)
            }
            MethodKind::Lut => {
                let lut = LutBuilder::new(&self.engine)
                    .build_nominal_with_budget(unit.cell, &unit.arc, k);
                let predictions: Vec<f64> = validation_points
                    .iter()
                    .map(|p| {
                        let m = lut.predict(p);
                        unit.metric.pick(&m)
                    })
                    .collect();
                (None, predictions)
            }
        };

        Ok((
            UnitResult {
                arc_id: unit.arc.id(),
                arc: unit.arc,
                metric: unit.metric,
                method: unit.method,
                kind: unit.kind,
                params,
                training_count: k,
                validation_points: v,
                error_percent: mean_relative_error_percent(&predictions, &reference),
                requested_simulations: (k + v) as u64,
            },
            None,
        ))
    }

    /// Executes one Monte Carlo variation unit: every export-grid point under every
    /// process seed (through the shared backend/counter/cache, so farm fleets, disk
    /// caches and single-flight dedup all apply per `(seed, point)` coordinate), reduced
    /// to a mean/sigma/skew [`VariationTable`] on the nominal tables' index grid.
    fn run_variation_unit(
        &self,
        unit: &WorkUnit,
    ) -> Result<(UnitResult, Option<VariationTable>), PipelineError> {
        let config = self.config.variation.clone().ok_or_else(|| {
            PipelineError::config(
                "Monte Carlo unit reached the runner without a variation config; \
                 characterize() should have rejected the plan",
            )
        })?;
        let (slew_axis, load_axis) =
            slic::liberty::export_axes(&self.engine, self.config.export_grid);
        let extractor = VariationExtractor::new(&self.engine, config)
            .map_err(|err| PipelineError::config(format!("invalid variation config: {err}")))?;
        let requested = extractor.requested_simulations(slew_axis.len(), load_axis.len());
        let table = extractor.extract(unit.cell, &unit.arc, unit.metric, &slew_axis, &load_axis);
        Ok((
            UnitResult {
                arc_id: unit.arc.id(),
                arc: unit.arc,
                metric: unit.metric,
                method: unit.method,
                kind: unit.kind,
                params: None,
                training_count: 0,
                validation_points: 0,
                error_percent: table.mean_cv_percent(),
                requested_simulations: requested,
            },
            Some(table),
        ))
    }
}

/// Metric-selection helper shared by the runner stages.
trait MetricPick {
    /// The metric's value out of a measurement, in seconds.
    fn pick(&self, m: &slic_spice::TimingMeasurement) -> f64;
}

impl MetricPick for TimingMetric {
    fn pick(&self, m: &slic_spice::TimingMeasurement) -> f64 {
        match self {
            TimingMetric::Delay => m.delay.value(),
            TimingMetric::OutputSlew => m.output_slew.value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BackendChoice, RunConfig};

    #[test]
    fn a_farm_configuration_without_a_backend_instance_is_rejected() {
        let mut config = RunConfig::default().resolve().expect("resolves");
        let BackendChoice::Farm { tuning, .. } = (RunConfig {
            spawn_workers: Some(1),
            ..Default::default()
        })
        .resolve()
        .expect("resolves")
        .backend
        else {
            panic!("farm backend expected");
        };
        config.backend = BackendChoice::Farm {
            workers: vec!["10.0.0.5:9200".to_string()],
            spawn_workers: 0,
            tuning,
        };
        // Silently running a farm-configured plan in-process would defeat the point of
        // resolve() validating the choice; every backend-less constructor must refuse.
        let err = PipelineRunner::new(config.clone())
            .err()
            .expect("must not run locally");
        assert!(err.to_string().contains("no backend instance"), "{err}");
        let cache: Arc<dyn SimulationCache> = Arc::new(InMemorySimCache::new());
        let err = PipelineRunner::with_cache(config, cache)
            .err()
            .expect("with_cache must refuse too");
        assert!(err.to_string().contains("no backend instance"), "{err}");
    }

    #[test]
    fn an_explicit_backend_instance_satisfies_a_farm_configuration() {
        let mut config = RunConfig::default().resolve().expect("resolves");
        let BackendChoice::Farm { tuning, .. } = (RunConfig {
            spawn_workers: Some(2),
            ..Default::default()
        })
        .resolve()
        .expect("resolves")
        .backend
        else {
            panic!("farm backend expected");
        };
        config.backend = BackendChoice::Farm {
            workers: vec![],
            spawn_workers: 2,
            tuning,
        };
        // Any SimulationBackend instance satisfies the requirement; the pipeline does
        // not (and cannot) verify it is really a fleet.
        let backend: Arc<dyn SimulationBackend> = Arc::new(slic_spice::LocalBackend::new());
        let runner = PipelineRunner::with_backend(config, backend).expect("constructs");
        assert_eq!(runner.engine().backend().name(), "local");
    }
}
