//! Ablation A1 (end of Section III): does adding the `Sin·Cload` cross term to the compact
//! model pay for its extra parameter?  The paper frames this as a trade-off between model
//! accuracy and the degree of data compression.

use criterion::{criterion_group, criterion_main, Criterion};
use slic::prelude::*;
use slic::report::markdown_table;
use slic_bench::banner;

fn collect_samples(engine: &CharacterizationEngine, cell: Cell) -> Vec<TimingSample> {
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let nominal = ProcessSample::nominal();
    engine
        .input_space()
        .lut_grid(5, 5, 3)
        .into_iter()
        .map(|p| {
            let m = engine.simulate_nominal(cell, &arc, &p);
            TimingSample::new(p, engine.ieff(&arc, &p, &nominal), m.delay)
        })
        .collect()
}

/// Fits the 5-parameter extended model by augmenting the 4-parameter LSE fit with a simple
/// one-dimensional search over the cross-term coefficient (sufficient because the model is
/// linear in `gamma` once the base parameters are fixed, and it keeps the ablation honest:
/// the extra parameter gets every chance to help).
fn fit_extended(samples: &[TimingSample], base: TimingParams) -> ExtendedTimingParams {
    let mut best = ExtendedTimingParams::new(base, 0.0);
    let mut best_err = best.mean_relative_error_percent(samples);
    for step in -40..=40 {
        let gamma = step as f64 * 0.002;
        let candidate = ExtendedTimingParams::new(base, gamma);
        let err = candidate.mean_relative_error_percent(samples);
        if err < best_err {
            best_err = err;
            best = candidate;
        }
    }
    best
}

fn regenerate() -> (Vec<TimingSample>, TimingParams) {
    banner(
        "Ablation A1",
        "4-parameter model vs 5-parameter model with the Sin*Cload cross term (Section III trade-off)",
    );
    let headers: Vec<String> = [
        "Tech",
        "Cell",
        "4-param error (%)",
        "5-param error (%)",
        "gamma (1/ps)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut kept: Option<(Vec<TimingSample>, TimingParams)> = None;
    for (label, tech) in [
        ("14nm", TechnologyNode::n14_finfet()),
        ("28nm", TechnologyNode::n28_bulk()),
    ] {
        let engine = CharacterizationEngine::with_config(tech, TransientConfig::fast())
            .expect("valid transient configuration");
        for kind in [CellKind::Inv, CellKind::Nor2] {
            let cell = Cell::new(kind, DriveStrength::X1);
            let samples = collect_samples(&engine, cell);
            let base = LeastSquaresFitter::new().fit(&samples).params;
            let base_err = base.mean_relative_error_percent(&samples);
            let extended = fit_extended(&samples, base);
            let ext_err = extended.mean_relative_error_percent(&samples);
            rows.push(vec![
                label.to_string(),
                kind.name().to_string(),
                format!("{base_err:.2}"),
                format!("{ext_err:.2}"),
                format!("{:.4}", extended.gamma),
            ]);
            if kept.is_none() {
                kept = Some((samples, base));
            }
        }
    }
    println!("{}", markdown_table(&headers, &rows));
    println!("(paper: the cross term is only worth adding when the 4-parameter fit shows a systematic offset)");
    kept.expect("at least one cell fitted")
}

fn bench(c: &mut Criterion) {
    let (samples, base) = regenerate();
    c.bench_function("ablation_extended_model_refit", |b| {
        b.iter(|| fit_extended(&samples, base))
    });
}

criterion_group! {
    name = benches;
    config = slic_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
