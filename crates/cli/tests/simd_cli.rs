//! End-to-end SIMD-kernel tests against the real `slic` binary: the default (scalar)
//! artifact must carry no trace of the SIMD work, an explicit `kernel.simd = false`
//! config must be byte-identical to the default, and a `--simd` run must record the
//! kernel cost section with consistent dispatch accounting.

use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_slic");

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slic-simd-cli-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Runs `slic <args>`, asserting success; returns stdout.
fn slic(dir: &Path, args: &[&str]) -> String {
    let output = Command::new(BIN)
        .args(args)
        .current_dir(dir)
        .output()
        .expect("slic runs");
    assert!(
        output.status.success(),
        "`slic {}` failed:\nstdout: {}\nstderr: {}",
        args.join(" "),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8(output.stdout).expect("utf8 stdout")
}

fn kernel_field(kernel: &serde::Value, name: &str) -> u64 {
    kernel
        .get(name)
        .and_then(serde::Value::as_f64)
        .unwrap_or_else(|| panic!("kernel field `{name}` missing")) as u64
}

#[test]
fn default_artifact_is_simd_free_and_a_simd_run_records_the_kernel_section() {
    let dir = temp_dir("kernel");
    slic(&dir, &["learn", "--out", "history.json"]);

    // Default run: the artifact must not mention the kernel section at all — not even
    // `"kernel": null` — so pre-SIMD artifact consumers (and byte-level diffs against
    // pre-SIMD runs) see nothing new.
    slic(
        &dir,
        &[
            "characterize",
            "--history",
            "history.json",
            "--out",
            "run-default.json",
        ],
    );
    let default_bytes = std::fs::read(dir.join("run-default.json")).expect("default artifact");
    let default_text = String::from_utf8(default_bytes.clone()).expect("utf8 artifact");
    assert!(
        !default_text.contains("kernel"),
        "default artifact must carry no kernel key"
    );

    // An explicit `kernel.simd = false` config resolves to the same run: byte-identical.
    std::fs::write(dir.join("scalar.toml"), "kernel.simd = false\n").expect("config written");
    slic(
        &dir,
        &[
            "characterize",
            "--config",
            "scalar.toml",
            "--history",
            "history.json",
            "--out",
            "run-scalar.json",
        ],
    );
    let scalar_bytes = std::fs::read(dir.join("run-scalar.json")).expect("scalar artifact");
    assert_eq!(
        default_bytes, scalar_bytes,
        "kernel.simd = false must be byte-identical to the default"
    );

    // A `--simd` run records the kernel cost section, with every dispatched lane
    // accounted for exactly once, and surfaces the same numbers on stdout.
    let stdout = slic(
        &dir,
        &[
            "characterize",
            "--simd",
            "--history",
            "history.json",
            "--out",
            "run-simd.json",
        ],
    );
    assert!(
        stdout.contains("kernel (simd):"),
        "post-run summary missing the kernel line:\n{stdout}"
    );
    assert!(
        stdout.contains("dispatch:"),
        "post-run summary missing the dispatch line:\n{stdout}"
    );
    let artifact: serde::Value = serde_json::from_str(
        &std::fs::read_to_string(dir.join("run-simd.json")).expect("simd artifact"),
    )
    .expect("artifact parses");
    let kernel = artifact.get("kernel").expect("kernel section present");
    assert_eq!(
        kernel.get("simd").and_then(serde::Value::as_bool),
        Some(true)
    );
    assert!(kernel_field(kernel, "sims") > 0);
    assert!(
        kernel_field(kernel, "quad_rounds") > 0,
        "SIMD quads must have run"
    );
    assert_eq!(
        kernel_field(kernel, "lanes_dispatched"),
        kernel_field(kernel, "lanes_cached")
            + kernel_field(kernel, "lanes_claimed")
            + kernel_field(kernel, "lanes_deferred"),
        "every dispatched lane is cached, claimed or deferred"
    );

    std::fs::remove_dir_all(&dir).ok();
}
