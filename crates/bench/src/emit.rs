//! Machine-readable bench artifacts (`BENCH_*.json`).
//!
//! The transient-kernel bench records its measurements as a JSON artifact so the speedup
//! is a committed, regression-gated number rather than a claim in a commit message: CI
//! re-runs the bench in reduced mode and fails if throughput or accuracy regresses against
//! the committed `BENCH_transient.json` (see the "Performance" section of the README for
//! the schema).
//!
//! The JSON is emitted by hand rather than through serde so the artifact layout is stable
//! and diff-friendly regardless of the serde stand-in's value model.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Measurements of one kernel variant at one configuration preset.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantReport {
    /// Kernel variant: `rk4_scalar`, `embedded_scalar` or `embedded_batch`.
    pub name: String,
    /// Configuration preset: `fast` or `accurate`.
    pub config: String,
    /// Transient simulations completed per wall-clock second (single thread).
    pub sims_per_sec: f64,
    /// Mean accepted integration steps per simulation.
    pub steps_per_sim: f64,
    /// Mean rejected step attempts per simulation (zero for RK4, which has no error
    /// control).
    pub rejected_steps_per_sim: f64,
    /// Mean transistor-model evaluations per simulation.
    pub device_evals_per_sim: f64,
    /// Worst relative delay error against the golden reference (seed RK4, accurate
    /// preset), in percent.
    pub max_delay_err_vs_golden_pct: f64,
    /// Worst relative output-slew error against the golden reference, in percent.
    pub max_slew_err_vs_golden_pct: f64,
}

/// One named speedup ratio derived from the variant table.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupReport {
    /// Ratio name, e.g. `embedded_batch_vs_rk4_scalar_fast`.
    pub name: String,
    /// Throughput ratio (dimensionless, > 1 means faster).
    pub ratio: f64,
}

/// The complete transient-kernel bench artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientBenchReport {
    /// Whether the bench ran in CI's reduced smoke mode.
    pub reduced: bool,
    /// Cell whose arc was simulated.
    pub cell: String,
    /// Arc transition direction.
    pub arc: String,
    /// Technology node name.
    pub tech: String,
    /// Input points in the Monte Carlo sweep.
    pub points: usize,
    /// Process seeds per input point.
    pub seeds: usize,
    /// Per-variant measurements.
    pub variants: Vec<VariantReport>,
    /// Derived throughput ratios.
    pub speedups: Vec<SpeedupReport>,
}

/// Formats a float so it parses as a JSON number (finite; six significant decimals).
fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "0.0".to_string()
    }
}

impl TransientBenchReport {
    /// The variant entry for `(name, config)`, if measured.
    pub fn variant(&self, name: &str, config: &str) -> Option<&VariantReport> {
        self.variants
            .iter()
            .find(|v| v.name == name && v.config == config)
    }

    /// The named speedup ratio, if derived.
    pub fn speedup(&self, name: &str) -> Option<f64> {
        self.speedups
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.ratio)
    }

    /// Renders the artifact as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"slic-bench/transient-kernel/v1\",\n");
        let _ = writeln!(out, "  \"reduced\": {},", self.reduced);
        let _ = writeln!(out, "  \"workload\": {{");
        let _ = writeln!(out, "    \"cell\": \"{}\",", self.cell);
        let _ = writeln!(out, "    \"arc\": \"{}\",", self.arc);
        let _ = writeln!(out, "    \"tech\": \"{}\",", self.tech);
        let _ = writeln!(out, "    \"points\": {},", self.points);
        let _ = writeln!(out, "    \"seeds\": {},", self.seeds);
        let _ = writeln!(
            out,
            "    \"sims_per_variant\": {}",
            self.points * self.seeds
        );
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"variants\": [");
        for (i, v) in self.variants.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", v.name);
            let _ = writeln!(out, "      \"config\": \"{}\",", v.config);
            let _ = writeln!(
                out,
                "      \"sims_per_sec\": {},",
                json_number(v.sims_per_sec)
            );
            let _ = writeln!(
                out,
                "      \"steps_per_sim\": {},",
                json_number(v.steps_per_sim)
            );
            let _ = writeln!(
                out,
                "      \"rejected_steps_per_sim\": {},",
                json_number(v.rejected_steps_per_sim)
            );
            let _ = writeln!(
                out,
                "      \"device_evals_per_sim\": {},",
                json_number(v.device_evals_per_sim)
            );
            let _ = writeln!(
                out,
                "      \"max_delay_err_vs_golden_pct\": {},",
                json_number(v.max_delay_err_vs_golden_pct)
            );
            let _ = writeln!(
                out,
                "      \"max_slew_err_vs_golden_pct\": {}",
                json_number(v.max_slew_err_vs_golden_pct)
            );
            let comma = if i + 1 < self.variants.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"speedups\": {{");
        for (i, s) in self.speedups.iter().enumerate() {
            let comma = if i + 1 < self.speedups.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{}\": {}{comma}", s.name, json_number(s.ratio));
        }
        let _ = writeln!(out, "  }}");
        out.push_str("}\n");
        out
    }

    /// Writes the artifact to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TransientBenchReport {
        TransientBenchReport {
            reduced: true,
            cell: "NAND2_X1".to_string(),
            arc: "fall".to_string(),
            tech: "n28_bulk".to_string(),
            points: 2,
            seeds: 8,
            variants: vec![VariantReport {
                name: "rk4_scalar".to_string(),
                config: "fast".to_string(),
                sims_per_sec: 1234.5,
                steps_per_sim: 190.25,
                rejected_steps_per_sim: 0.0,
                device_evals_per_sim: 1522.0,
                max_delay_err_vs_golden_pct: 0.9,
                max_slew_err_vs_golden_pct: 0.1,
            }],
            speedups: vec![SpeedupReport {
                name: "embedded_batch_vs_rk4_scalar_fast".to_string(),
                ratio: 5.5,
            }],
        }
    }

    #[test]
    fn artifact_is_valid_json() {
        let json = sample_report().to_json();
        let value: serde::Value = serde_json::from_str(&json).expect("artifact must parse");
        let serde::Value::Object(map) = value else {
            panic!("artifact must be a JSON object");
        };
        assert!(map.iter().any(|(k, _)| k == "schema"));
        assert!(map.iter().any(|(k, _)| k == "variants"));
        assert!(map.iter().any(|(k, _)| k == "speedups"));
    }

    #[test]
    fn lookup_helpers_find_entries() {
        let report = sample_report();
        assert!(report.variant("rk4_scalar", "fast").is_some());
        assert!(report.variant("rk4_scalar", "accurate").is_none());
        assert_eq!(
            report.speedup("embedded_batch_vs_rk4_scalar_fast"),
            Some(5.5)
        );
        assert_eq!(report.speedup("missing"), None);
    }

    #[test]
    fn non_finite_numbers_are_sanitized() {
        assert_eq!(json_number(f64::NAN), "0.0");
        assert_eq!(json_number(f64::INFINITY), "0.0");
        assert_eq!(json_number(2.5), "2.500000");
    }

    #[test]
    fn write_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("slic_bench_emit_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_transient.json");
        let report = sample_report();
        report.write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, report.to_json());
        std::fs::remove_file(&path).ok();
    }
}
