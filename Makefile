# Development entry points (mirrors .github/workflows/ci.yml).

CARGO ?= cargo

.PHONY: build test bench lint fmt clippy clean

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

bench:
	$(CARGO) bench -p slic-bench

fmt:
	$(CARGO) fmt --all -- --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

lint: fmt clippy

clean:
	$(CARGO) clean
