//! Maximum-a-posteriori extraction of the compact-model parameters (Eqs. 13–15).
//!
//! The MAP estimator combines three ingredients:
//!
//! * the Gaussian prior `N(µ0, Σ0)` learned from historical technologies,
//! * the per-condition precisions `β(ξ)` learned from historical residuals, and
//! * the `k` fresh observations from the target technology,
//!
//! and minimizes Eq. (15):
//!
//! ```text
//! ½ (µ − µ0)ᵀ Σ0⁻¹ (µ − µ0)  +  ½ Σᵢ β(ξᵢ) · rᵢ(µ)²
//! ```
//!
//! where `rᵢ` is the relative misfit of observation `i`.  The optimization is delegated to
//! the damped Gauss–Newton solver of `slic-timing-model`, which this module wraps together
//! with a Laplace-approximation posterior covariance.

use crate::precision::PrecisionModel;
use crate::prior::ParameterPrior;
use serde::{Deserialize, Serialize};
use slic_linalg::{Matrix, Vector};
use slic_stats::MultivariateGaussian;
use slic_timing_model::{FitConfig, LeastSquaresFitter, TimingParams, TimingSample, PARAM_COUNT};

/// Result of a MAP extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapFit {
    /// The MAP parameter estimate.
    pub params: TimingParams,
    /// Laplace-approximation posterior covariance of the parameters.
    pub posterior_covariance: Matrix,
    /// Number of Gauss–Newton iterations spent.
    pub iterations: usize,
    /// Whether the optimizer met its convergence criterion.
    pub converged: bool,
    /// Final objective value (Eq. 15).
    pub cost: f64,
    /// The per-sample precisions `β(ξᵢ)` that were used.
    pub weights: Vec<f64>,
}

impl MapFit {
    /// The marginal posterior standard deviation of each parameter.
    pub fn posterior_std_devs(&self) -> Vector {
        Vector::from_fn(PARAM_COUNT, |i| self.posterior_covariance[(i, i)].sqrt())
    }

    /// The posterior as a multivariate Gaussian (for posterior-predictive sampling).
    ///
    /// # Panics
    ///
    /// Panics only if the stored covariance lost positive definiteness, which construction
    /// guards against by regularizing.
    pub fn posterior(&self) -> MultivariateGaussian {
        MultivariateGaussian::new(self.params.to_vector(), self.posterior_covariance.clone())
            .expect("posterior covariance is positive definite by construction")
    }
}

/// The MAP extractor: a prior, a precision field and a solver configuration.
#[derive(Debug, Clone)]
pub struct MapExtractor {
    prior: ParameterPrior,
    precision: PrecisionModel,
    fit_config: FitConfig,
}

impl MapExtractor {
    /// Creates an extractor from a learned prior and precision field.
    pub fn new(prior: ParameterPrior, precision: PrecisionModel) -> Self {
        Self {
            prior,
            precision,
            fit_config: FitConfig::default(),
        }
    }

    /// Replaces the solver configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn with_fit_config(mut self, config: FitConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid fit configuration: {msg}");
        }
        self.fit_config = config;
        self
    }

    /// The prior in use.
    pub fn prior(&self) -> &ParameterPrior {
        &self.prior
    }

    /// The precision field in use.
    pub fn precision(&self) -> &PrecisionModel {
        &self.precision
    }

    /// The prior-only estimate: what the extractor predicts with zero new-technology
    /// simulations (`k = 0`).
    pub fn prior_only_params(&self) -> TimingParams {
        self.prior.mean_params()
    }

    /// Runs the MAP extraction of Eq. (15) on `k` fresh observations.
    ///
    /// Passing an empty slice returns the prior-only estimate with the prior covariance as
    /// posterior — the `k = 0` point of the Fig. 6 sweep.
    pub fn extract(&self, samples: &[TimingSample]) -> MapFit {
        let penalty = self.prior.to_penalty();
        if samples.is_empty() {
            return MapFit {
                params: self.prior.mean_params(),
                posterior_covariance: self.prior.distribution().covariance().clone(),
                iterations: 0,
                converged: true,
                cost: 0.0,
                weights: Vec::new(),
            };
        }
        let weights: Vec<f64> = samples
            .iter()
            .map(|s| self.precision.beta(&s.point))
            .collect();
        let fitter = LeastSquaresFitter::with_config(self.fit_config);
        let result =
            fitter.fit_weighted(samples, &weights, Some(&penalty), self.prior.mean_params());
        let posterior_covariance = self.laplace_covariance(&result.params, samples, &weights);
        MapFit {
            params: result.params,
            posterior_covariance,
            iterations: result.iterations,
            converged: result.converged,
            cost: result.cost,
            weights,
        }
    }

    /// Laplace approximation of the posterior covariance:
    /// `(Σ0⁻¹ + Σᵢ βᵢ · gᵢ gᵢᵀ / Tᵢ²)⁻¹`, where `gᵢ` is the model gradient at sample `i`.
    fn laplace_covariance(
        &self,
        params: &TimingParams,
        samples: &[TimingSample],
        weights: &[f64],
    ) -> Matrix {
        let prior_precision = self.prior.distribution().precision();
        let mut hessian = prior_precision;
        for (s, w) in samples.iter().zip(weights) {
            let g = params.gradient(&s.point, s.ieff);
            let scale = w / (s.observed.value() * s.observed.value());
            for i in 0..PARAM_COUNT {
                for j in 0..PARAM_COUNT {
                    hessian[(i, j)] += scale * g[i] * g[j];
                }
            }
        }
        // Regularize lightly before inverting so extreme precisions cannot produce a
        // numerically indefinite matrix.
        hessian
            .add_diagonal(1e-9)
            .cholesky()
            .map(|c| c.inverse())
            .unwrap_or_else(|_| self.prior.distribution().covariance().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoricalDatabase, HistoricalRecord, TimingMetric};
    use crate::precision::PrecisionConfig;
    use crate::prior::PriorBuilder;
    use slic_spice::InputPoint;
    use slic_units::{Amperes, Farads, Seconds, Volts};

    fn truth() -> TimingParams {
        TimingParams::new(0.41, 1.15, -0.24, 0.10)
    }

    fn historical_db() -> HistoricalDatabase {
        // Historical parameters scattered around values close to (but not equal to) the
        // target truth, the way Table I scatters.
        let mut db = HistoricalDatabase::new();
        for (i, tech) in ["n45", "n32", "n28", "n20", "n16", "n14"]
            .iter()
            .enumerate()
        {
            let d = (i as f64 - 2.5) * 0.008;
            db.push(HistoricalRecord::new(
                *tech,
                45,
                "INV_X1",
                "INV_X1/A0/FALL",
                TimingMetric::Delay,
                TimingParams::new(0.39 + d, 1.05 + 4.0 * d, -0.26 + d, 0.09 + 0.3 * d),
                1.2,
                Vec::new(),
            ));
        }
        db
    }

    fn extractor() -> MapExtractor {
        let prior = PriorBuilder::new()
            .build(&historical_db(), TimingMetric::Delay, None)
            .unwrap();
        let precision =
            PrecisionModel::flat(TimingMetric::Delay, 2500.0, PrecisionConfig::default());
        MapExtractor::new(prior, precision)
    }

    fn sample_at(sin_ps: f64, cload_ff: f64, vdd: f64) -> TimingSample {
        let point = InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(cload_ff),
            Volts(vdd),
        );
        let ieff = Amperes(20e-6 + 60e-6 * (vdd - 0.5).powi(2) / 0.25);
        TimingSample::new(point, ieff, truth().evaluate(&point, ieff))
    }

    fn validation_error(params: &TimingParams) -> f64 {
        let samples: Vec<TimingSample> = (0..40)
            .map(|i| {
                sample_at(
                    1.0 + 14.0 * (i as f64 / 40.0),
                    0.4 + 5.0 * ((i * 7 % 40) as f64 / 40.0),
                    0.66 + 0.33 * ((i * 3 % 40) as f64 / 40.0),
                )
            })
            .collect();
        params.mean_relative_error_percent(&samples)
    }

    #[test]
    fn zero_samples_returns_the_prior() {
        let ex = extractor();
        let fit = ex.extract(&[]);
        assert_eq!(fit.params, ex.prior_only_params());
        assert_eq!(fit.iterations, 0);
        assert!(fit.converged);
        assert!(fit.weights.is_empty());
    }

    #[test]
    fn accuracy_improves_with_more_samples() {
        let ex = extractor();
        let err0 = validation_error(&ex.extract(&[]).params);
        let err2 = validation_error(
            &ex.extract(&[sample_at(3.0, 1.0, 0.9), sample_at(12.0, 5.0, 0.7)])
                .params,
        );
        let err5 = validation_error(
            &ex.extract(&[
                sample_at(3.0, 1.0, 0.9),
                sample_at(12.0, 5.0, 0.7),
                sample_at(7.0, 2.5, 0.8),
                sample_at(1.5, 4.0, 0.95),
                sample_at(14.0, 0.6, 0.68),
            ])
            .params,
        );
        assert!(
            err2 < err0,
            "two samples must improve on the prior ({err2} vs {err0})"
        );
        assert!(
            err5 <= err2 + 0.2,
            "five samples must not be worse ({err5} vs {err2})"
        );
        assert!(
            err5 < 1.0,
            "five clean samples should nail the parameters ({err5}%)"
        );
    }

    #[test]
    fn posterior_tightens_with_data() {
        let ex = extractor();
        let prior_fit = ex.extract(&[]);
        let data_fit = ex.extract(&[
            sample_at(3.0, 1.0, 0.9),
            sample_at(12.0, 5.0, 0.7),
            sample_at(7.0, 2.5, 0.8),
        ]);
        let prior_sd = prior_fit.posterior_std_devs();
        let post_sd = data_fit.posterior_std_devs();
        for i in 0..PARAM_COUNT {
            assert!(
                post_sd[i] <= prior_sd[i] + 1e-12,
                "component {i}: posterior sd {} must not exceed prior sd {}",
                post_sd[i],
                prior_sd[i]
            );
        }
        // At least one direction must tighten substantially.
        assert!(post_sd[0] < 0.7 * prior_sd[0] || post_sd[2] < 0.7 * prior_sd[2]);
    }

    #[test]
    fn posterior_is_a_valid_distribution() {
        let ex = extractor();
        let fit = ex.extract(&[sample_at(5.0, 2.0, 0.85), sample_at(10.0, 4.0, 0.7)]);
        let posterior = fit.posterior();
        assert_eq!(posterior.dim(), PARAM_COUNT);
        // The MAP point has the highest density.
        let at_map = posterior.log_pdf(&fit.params.to_vector());
        let away = posterior.log_pdf(&ex.prior_only_params().to_vector());
        assert!(at_map >= away);
    }

    #[test]
    fn higher_precision_conditions_dominate_the_fit() {
        // Build a precision field that trusts high-Vdd conditions far more, then feed one
        // corrupted low-Vdd observation: the fit should stay close to the high-Vdd data.
        let prior = PriorBuilder::new()
            .build(&historical_db(), TimingMetric::Delay, None)
            .unwrap();
        let mut db = HistoricalDatabase::new();
        let hi = InputPoint::new(
            Seconds::from_picoseconds(5.0),
            Farads::from_femtofarads(2.0),
            Volts(0.95),
        );
        let lo = InputPoint::new(
            Seconds::from_picoseconds(5.0),
            Farads::from_femtofarads(2.0),
            Volts(0.66),
        );
        for (tech, sign) in [("a", 1.0), ("b", -1.0), ("c", 0.5), ("d", -0.5)] {
            db.push(HistoricalRecord::new(
                tech,
                28,
                "INV_X1",
                "INV_X1/A0/FALL",
                TimingMetric::Delay,
                TimingParams::new(0.39, 1.0, -0.26, 0.09),
                1.0,
                vec![
                    crate::history::ConditionResidual {
                        point: hi,
                        relative_residual: sign * 0.01,
                    },
                    crate::history::ConditionResidual {
                        point: lo,
                        relative_residual: sign * 0.12,
                    },
                ],
            ));
        }
        let space = slic_spice::InputSpace::paper_space((Volts(0.65), Volts(1.0)));
        let precision =
            PrecisionModel::learn(&db, TimingMetric::Delay, &space, PrecisionConfig::default());
        let ex = MapExtractor::new(prior, precision);

        let good = sample_at(5.0, 2.0, 0.95);
        let ieff_lo = Amperes(25e-6);
        let corrupted = TimingSample::new(
            lo,
            ieff_lo,
            Seconds(truth().evaluate(&lo, ieff_lo).value() * 1.6),
        );
        let fit = ex.extract(&[good, corrupted]);
        assert!(fit.weights[0] > 10.0 * fit.weights[1]);
        // Prediction at a clean high-Vdd condition stays accurate despite the corrupted
        // low-Vdd observation.
        let probe = sample_at(4.0, 1.5, 0.92);
        assert!(fit.params.relative_error(&probe).abs() < 0.05);
    }

    #[test]
    fn prior_strength_ablation_changes_behaviour() {
        let ex = extractor();
        let sharp = MapExtractor::new(
            ex.prior().with_covariance_scaled(0.05),
            PrecisionModel::flat(TimingMetric::Delay, 2500.0, PrecisionConfig::default()),
        );
        // With a very sharp prior, two samples barely move the estimate away from the prior
        // mean; with the normal prior they move it further toward the truth.
        let samples = [sample_at(3.0, 1.0, 0.9), sample_at(12.0, 5.0, 0.7)];
        let normal_fit = ex.extract(&samples);
        let sharp_fit = sharp.extract(&samples);
        let prior_mean = ex.prior_only_params().to_vector();
        let d_normal = (&normal_fit.params.to_vector() - &prior_mean).norm();
        let d_sharp = (&sharp_fit.params.to_vector() - &prior_mean).norm();
        assert!(d_sharp < d_normal);
    }

    #[test]
    #[should_panic(expected = "invalid fit configuration")]
    fn invalid_fit_config_rejected() {
        let _ = extractor().with_fit_config(FitConfig {
            max_iterations: 0,
            ..FitConfig::default()
        });
    }
}
