//! L1 must-fire: a MutexGuard held across a blocking solver call.

fn drain(queue: &std::sync::Mutex<Vec<u32>>, solver: &Solver) {
    let mut guard = queue.lock().unwrap_or_else(|p| p.into_inner());
    let batch = guard.split_off(0);
    let _results = solver.solve_batch(&batch);
    guard.clear();
}
