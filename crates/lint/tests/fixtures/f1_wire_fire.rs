//! F1 wire must-fire: decimal float serialization in a wire/cache module.

fn encode(delay: f64, slew: f64) -> String {
    let mut out = format!("{:.12}", delay);
    out.push_str(&format!("{:e}", slew));
    out.push_str(&format!("magic {}", 0.5));
    out
}
