//! Property tests for plan sharding and artifact merging: `split(n)` covers every work
//! unit exactly once for arbitrary plan shapes, merging shard artifacts equals merging
//! the unsharded artifact (variation sections included), and shards of differently
//! configured variation ensembles are rejected.

use proptest::prelude::*;
use slic::prelude::TimingParams;
use slic_pipeline::artifact::SCHEMA_VERSION;
use slic_pipeline::{
    CharacterizationPlan, RunArtifact, RunConfig, UnitKind, UnitResult, VariationKnobs,
    VariationSection, WorkUnit,
};
use slic_variation::VariationTable;

/// Builds an arbitrary-but-valid run configuration from a handful of generator draws.
fn arbitrary_plan(
    lib: usize,
    metric_sel: usize,
    method_mask: usize,
    variation: bool,
) -> CharacterizationPlan {
    let libraries = ["paper-trio", "standard"];
    let metric_options: [&[&str]; 3] = [&["delay"], &["slew"], &["delay", "slew"]];
    let all_methods = ["bayesian", "lse", "lut"];
    let methods: Vec<String> = all_methods
        .iter()
        .enumerate()
        .filter(|(i, _)| method_mask & (1 << i) != 0)
        .map(|(_, m)| m.to_string())
        .collect();
    let config = RunConfig {
        library: Some(libraries[lib].to_string()),
        metrics: Some(
            metric_options[metric_sel]
                .iter()
                .map(|m| m.to_string())
                .collect(),
        ),
        methods: Some(methods),
        variation: variation.then(VariationKnobs::default),
        ..RunConfig::default()
    };
    let resolved = config.resolve().expect("generated configs are valid");
    CharacterizationPlan::from_config(&resolved).expect("generated plans are non-empty")
}

/// A deterministic synthetic moment table for one Monte Carlo unit.
fn synthetic_table(unit: &WorkUnit, process_seeds: usize) -> VariationTable {
    VariationTable {
        arc_id: unit.arc.id(),
        arc: unit.arc,
        metric: unit.metric,
        vdd: 0.8,
        slew_axis: vec![1e-12, 2e-12],
        load_axis: vec![1e-15, 2e-15],
        process_seeds,
        mean: vec![vec![10e-12, 11e-12], vec![12e-12, 13e-12]],
        sigma: vec![vec![0.5e-12; 2]; 2],
        skew: vec![vec![0.1; 2]; 2],
    }
}

/// A synthetic artifact whose per-unit numbers are deterministic functions of the plan,
/// so shard sums always reproduce the unsharded totals.  Monte Carlo units contribute a
/// table to a variation section parameterized by `(process_seeds, sigma_corners)`.
fn synthetic_artifact_with_variation(
    plan: &CharacterizationPlan,
    planned: usize,
    variation: Option<(usize, Vec<f64>)>,
) -> RunArtifact {
    let units: Vec<UnitResult> = plan
        .units()
        .iter()
        .map(|u| UnitResult {
            arc_id: u.arc.id(),
            arc: u.arc,
            metric: u.metric,
            method: u.method,
            kind: u.kind,
            params: (u.kind == UnitKind::Nominal).then(TimingParams::initial_guess),
            training_count: 6,
            validation_points: 12,
            error_percent: 1.25,
            requested_simulations: 18,
        })
        .collect();
    let variation = variation.map(|(process_seeds, sigma_corners)| VariationSection {
        process_seeds,
        sigma_corners,
        seed: 7,
        tables: plan
            .units()
            .iter()
            .filter(|u| u.kind == UnitKind::MonteCarlo)
            .map(|u| synthetic_table(u, process_seeds))
            .collect(),
    });
    let characterized = slic_pipeline::CharacterizedLibrary::from_units(
        plan.library_name(),
        "target-14nm-finfet",
        &units,
    );
    RunArtifact {
        schema_version: SCHEMA_VERSION,
        library: plan.library_name().to_string(),
        technology: "target-14nm-finfet".to_string(),
        profile: "quick".to_string(),
        seed: 99,
        planned_units: planned,
        units,
        characterized,
        total_simulations: 3 * plan.len() as u64,
        cache_hits: 2 * plan.len() as u64,
        cache_misses: plan.len() as u64,
        variation,
        kernel: None,
        farm: None,
    }
}

fn synthetic_artifact(plan: &CharacterizationPlan, planned: usize) -> RunArtifact {
    synthetic_artifact_with_variation(plan, planned, None)
}

proptest! {
    #[test]
    fn split_covers_every_unit_exactly_once(
        shards in 1usize..9,
        lib in 0usize..2,
        metric_sel in 0usize..3,
        method_mask in 1usize..8,
        variation_sel in 0usize..2,
    ) {
        let plan = arbitrary_plan(lib, metric_sel, method_mask, variation_sel == 1);
        let parts = plan.split(shards).expect("split succeeds");
        prop_assert_eq!(parts.len(), shards);

        // Every unit appears in exactly one shard (multiset equality of unit ids).
        let mut sharded_ids: Vec<String> = parts
            .iter()
            .flat_map(|p| p.units().iter().map(WorkUnit::id))
            .collect();
        sharded_ids.sort();
        let mut expected_ids: Vec<String> = plan.units().iter().map(WorkUnit::id).collect();
        expected_ids.sort();
        prop_assert_eq!(sharded_ids, expected_ids);

        // Shard membership is the stable hash of the unit identity, nothing else.
        for (index, part) in parts.iter().enumerate() {
            prop_assert_eq!(part.library_name(), plan.library_name());
            for unit in part.units() {
                prop_assert_eq!(unit.shard_of(shards), index);
            }
        }
    }

    #[test]
    fn merging_shard_artifacts_equals_the_unsharded_artifact(
        shards in 1usize..9,
        lib in 0usize..2,
        metric_sel in 0usize..3,
        method_mask in 1usize..8,
    ) {
        let plan = arbitrary_plan(lib, metric_sel, method_mask, false);
        let full = synthetic_artifact(&plan, plan.planned_units());

        let shard_artifacts: Vec<RunArtifact> = plan
            .split(shards)
            .expect("split succeeds")
            .iter()
            .map(|part| synthetic_artifact(part, part.planned_units()))
            .collect();

        let merged = RunArtifact::merge(&shard_artifacts).expect("disjoint shards merge");
        // Merging the complete artifact alone canonicalizes its unit order, giving the
        // reference the merged artifact must reproduce exactly.
        let canonical = RunArtifact::merge(std::slice::from_ref(&full)).expect("merges");
        prop_assert_eq!(merged, canonical);
    }

    #[test]
    fn merging_variation_shards_equals_the_unsharded_statistical_artifact(
        shards in 1usize..9,
        lib in 0usize..2,
        metric_sel in 0usize..3,
        method_mask in 1usize..8,
        process_seeds in 3usize..200,
    ) {
        let plan = arbitrary_plan(lib, metric_sel, method_mask, true);
        let ensemble = (process_seeds, vec![1.0, 3.0]);
        let full =
            synthetic_artifact_with_variation(&plan, plan.planned_units(), Some(ensemble.clone()));

        // Every shard echoes the full ensemble configuration and carries the tables of
        // its own Monte Carlo units (possibly none).
        let shard_artifacts: Vec<RunArtifact> = plan
            .split(shards)
            .expect("split succeeds")
            .iter()
            .map(|part| {
                synthetic_artifact_with_variation(part, part.planned_units(), Some(ensemble.clone()))
            })
            .collect();

        let merged = RunArtifact::merge(&shard_artifacts).expect("disjoint shards merge");
        let canonical = RunArtifact::merge(std::slice::from_ref(&full)).expect("merges");
        prop_assert_eq!(&merged, &canonical);
        let section = merged.variation.as_ref().expect("variation section survives");
        prop_assert_eq!(section.process_seeds, process_seeds);
        prop_assert_eq!(
            section.tables.len(),
            plan.units().iter().filter(|u| u.kind == UnitKind::MonteCarlo).count()
        );
        // Bit-for-bit: the serialized artifacts are identical, not merely PartialEq.
        prop_assert_eq!(
            merged.to_json().expect("serializes"),
            canonical.to_json().expect("serializes")
        );
    }

    #[test]
    fn variation_shards_of_different_ensembles_are_rejected(
        lib in 0usize..2,
        metric_sel in 0usize..3,
        mismatch_sel in 0usize..3,
        process_seeds in 3usize..200,
    ) {
        let plan = arbitrary_plan(lib, metric_sel, 1, true);
        let parts = plan.split(2).expect("split succeeds");
        let reference = (process_seeds, vec![1.0, 3.0]);
        let a = synthetic_artifact_with_variation(&parts[0], parts[0].planned_units(),
                                                  Some(reference.clone()));
        // Three ways a shard can describe a different ensemble: another seed count,
        // other sigma corners, or no variation section at all.
        let mut b = synthetic_artifact_with_variation(&parts[1], parts[1].planned_units(),
            match mismatch_sel {
                0 => Some((process_seeds + 1, reference.1.clone())),
                1 => Some((process_seeds, vec![2.0])),
                _ => None,
            });
        if mismatch_sel == 2 {
            b.variation = None;
        }
        let err = RunArtifact::merge(&[a, b])
            .expect_err("differently-configured variation shards must be rejected");
        let message = err.to_string();
        prop_assert!(
            message.contains("process-seed count")
                || message.contains("sigma corners")
                || message.contains("variation section"),
            "unexpected error: {}",
            message
        );
    }

    #[test]
    fn merging_overlapping_shards_is_rejected(
        lib in 0usize..2,
        metric_sel in 0usize..3,
        method_mask in 1usize..8,
    ) {
        let plan = arbitrary_plan(lib, metric_sel, method_mask, false);
        let full = synthetic_artifact(&plan, plan.planned_units());
        let parts = plan.split(2).expect("split succeeds");
        let overlapping = synthetic_artifact(&parts[0], parts[0].planned_units());
        if !overlapping.units.is_empty() {
            let err = RunArtifact::merge(&[full, overlapping])
                .expect_err("a re-submitted shard must be rejected");
            prop_assert!(err.to_string().contains("overlapping"), "{}", err);
        }
    }
}
