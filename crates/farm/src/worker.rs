//! The worker side of the farm: a serve loop that answers transient batches.
//!
//! A worker is stateless by design: it holds no cache, no counter and no plan — it
//! decodes each [`Batch`](crate::wire::Message::Batch), solves the lanes through the
//! in-process [`LocalBackend`] (the same batched kernel a local run uses, so results are
//! bitwise identical), and streams the results back.  All policy — caching, counting,
//! single-flight, retry — lives with the broker, which is what makes a worker safe to
//! kill at any moment: the broker simply re-dispatches the batch elsewhere.
//!
//! Lifecycle on every connection:
//!
//! 1. the worker writes its [`Hello`] line (protocol + kernel version handshake);
//! 2. it answers `batch` messages until the broker sends `shutdown` or disconnects;
//! 3. on `shutdown` it exits the serve loop; on disconnect (TCP mode) it waits for the
//!    next broker connection.
//!
//! The optional **batch limit** makes the worker die *abruptly* — connection dropped
//! without a response — once it has served its quota.  That is both an operational knob
//! (rolling restarts: drain a worker after N batches) and the deterministic fault
//! injection the failover tests rely on: a worker hitting its limit is indistinguishable
//! from one killed mid-batch.
//!
//! A richer misbehaviour script is the optional [`FaultPlan`]: seeded connection drops,
//! reply delays, garbage replies and refused re-dials, each exercising one broker-side
//! recovery path (see the [`fault`](crate::fault) module docs).  Unlike the batch limit,
//! a fault-dropped TCP worker keeps its listener alive and goes back to `accept` — it is
//! the *flapping* peer the broker's reconnect-with-backoff supervisor must re-admit.

use crate::fault::FaultPlan;
use crate::wire::{decode_message, encode_message, Hello, Message, WireResultEntry};
use slic_obs::TraceRecorder;
use slic_spice::{LocalBackend, SimResult, SimulationBackend};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;

/// Worker tuning and identification.
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Name announced in the handshake (for broker-side logs).
    pub name: String,
    /// Serve at most this many batches, then drop the connection without replying —
    /// rolling-restart drain and deterministic fault injection.  `None` = unlimited.
    pub max_batches: Option<u64>,
    /// Seeded misbehaviour script for chaos testing; `None` = behave.
    pub fault: Option<FaultPlan>,
    /// Display-only trace recorder for `worker.batch`/`worker.ping` spans; disabled
    /// (no-op) by default.  Never consulted for protocol decisions, so a traced worker
    /// answers byte-for-byte what an untraced one would.
    pub trace: TraceRecorder,
}

/// How a serve loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The peer disconnected (or sent something unparseable).
    Disconnected,
    /// The broker requested an orderly shutdown.
    Shutdown,
    /// The batch limit was reached: the last batch was received but never answered.
    BatchLimit,
    /// A [`FaultPlan`] dropped the connection on purpose; a TCP listener goes back to
    /// `accept` (after any scripted refusals) instead of exiting.
    FaultDrop,
}

/// Serves one established connection until disconnect, shutdown or the batch limit.
///
/// `served` carries the batch count across connections (TCP workers may serve several
/// brokers over their lifetime; the limit is per worker, not per connection).
///
/// # Errors
///
/// Returns the underlying I/O error when the transport fails mid-message.
pub fn serve_connection(
    mut reader: impl BufRead,
    mut writer: impl Write,
    served: &mut u64,
    options: &WorkerOptions,
) -> std::io::Result<ServeOutcome> {
    writeln!(
        writer,
        "{}",
        encode_message(&Message::Hello(Hello::current(options.name.clone())))
    )?;
    writer.flush()?;
    let backend = LocalBackend::new();
    let fault = options.fault.unwrap_or_default();
    let mut line = String::new();
    // Per-connection message count: a re-admitted flapping worker re-arms its drop.
    let mut messages = 0u64;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(ServeOutcome::Disconnected);
        }
        let message = match decode_message(line.trim_end()) {
            Ok(message) => message,
            Err(err) => {
                eprintln!("slic worker: dropping connection on malformed message: {err}");
                return Ok(ServeOutcome::Disconnected);
            }
        };
        messages += 1;
        if fault
            .drop_after_messages
            .is_some_and(|after| messages > after)
        {
            // Scripted crash: the message (ping or batch) dies unanswered, exactly like
            // a worker whose host vanished mid-conversation.
            return Ok(ServeOutcome::FaultDrop);
        }
        match message {
            Message::Batch { id, requests } => {
                if options.max_batches.is_some_and(|max| *served >= max) {
                    // Quota exhausted: die mid-batch, exactly like a crashed worker —
                    // the broker's failover owns this batch now.
                    return Ok(ServeOutcome::BatchLimit);
                }
                let _span = options.trace.span(
                    "worker.batch",
                    &[
                        ("id", id.to_string()),
                        ("lanes", requests.len().to_string()),
                    ],
                );
                let delay = fault.delay_for_batch_ms(*served);
                if delay > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
                if fault.garbles_batch(*served) {
                    // Scripted protocol violation: bytes that decode to nothing.
                    writeln!(writer, "%%% not a farm message (injected garbage) %%%")?;
                    writer.flush()?;
                    *served += 1;
                    continue;
                }
                let results: Vec<WireResultEntry> = solve_wire_batch(&backend, &requests);
                writeln!(
                    writer,
                    "{}",
                    encode_message(&Message::Results { id, results })
                )?;
                writer.flush()?;
                *served += 1;
            }
            Message::Ping { id } => {
                let _span = options.trace.span("worker.ping", &[("id", id.to_string())]);
                writeln!(writer, "{}", encode_message(&Message::Pong { id }))?;
                writer.flush()?;
            }
            Message::Shutdown => return Ok(ServeOutcome::Shutdown),
            Message::Hello(_) | Message::Results { .. } | Message::Pong { .. } => {
                eprintln!("slic worker: dropping connection on out-of-order message");
                return Ok(ServeOutcome::Disconnected);
            }
        }
    }
}

/// Decodes and solves one wire batch; a lane that fails to decode gets an error entry
/// instead of poisoning its siblings.
fn solve_wire_batch(
    backend: &LocalBackend,
    requests: &[crate::wire::WireRequest],
) -> Vec<WireResultEntry> {
    let decoded: Vec<Result<slic_spice::SimRequest, String>> = requests
        .iter()
        .map(|wire| wire.decode().map_err(|e| e.to_string()))
        .collect();
    let solvable: Vec<slic_spice::SimRequest> = decoded
        .iter()
        .filter_map(|r| r.as_ref().ok().cloned())
        .collect();
    let mut solved = backend.solve_batch(&solvable).into_iter();
    decoded
        .into_iter()
        .map(|lane| {
            let result: SimResult = match lane {
                // slic-lint: allow(P1) -- structural: `solved` has exactly one entry per Ok lane by construction of `solvable`.
                Ok(_) => solved.next().expect("one result per solvable lane"),
                Err(message) => Err(message),
            };
            WireResultEntry::encode(&result)
                .unwrap_or_else(|err| WireResultEntry::Error(err.to_string()))
        })
        .collect()
}

/// Serves a TCP listener: one broker connection at a time, until a broker sends
/// `shutdown` or the batch limit fires.
///
/// A disconnect is not the end of the worker — the broker may have restarted — so the
/// loop goes back to `accept`.  A [`FaultPlan`] drop likewise returns to `accept` (this
/// is the flapping worker the reconnect supervisor re-admits), first refusing the next
/// `refuse_reconnects` dials by closing them before the handshake.
///
/// # Errors
///
/// Returns the underlying I/O error when accepting or serving fails.
pub fn serve_listener(
    listener: &TcpListener,
    options: &WorkerOptions,
) -> std::io::Result<ServeOutcome> {
    let mut served = 0u64;
    let mut refusals_pending = 0u64;
    loop {
        let (stream, peer) = listener.accept()?;
        if refusals_pending > 0 {
            // Scripted refusal: close before the hello, like a host whose port is back
            // up but whose worker process is still starting.
            refusals_pending -= 1;
            drop(stream);
            continue;
        }
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        match serve_connection(reader, &stream, &mut served, options)? {
            ServeOutcome::Disconnected => {
                eprintln!("slic worker: broker at {peer} disconnected; waiting for the next");
            }
            ServeOutcome::FaultDrop => {
                refusals_pending = options.fault.map_or(0, |fault| fault.refuse_reconnects);
                eprintln!(
                    "slic worker: fault plan dropped broker at {peer}; refusing the next \
                     {refusals_pending} dials"
                );
            }
            ended => return Ok(ended),
        }
    }
}

/// Serves the process's stdin/stdout — the transport `--spawn-workers` uses.
///
/// # Errors
///
/// Returns the underlying I/O error when the pipes fail mid-message.
pub fn serve_stdio(options: &WorkerOptions) -> std::io::Result<ServeOutcome> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut served = 0u64;
    serve_connection(stdin.lock(), stdout.lock(), &mut served, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireRequest;
    use slic_cells::{Cell, CellKind, DriveStrength, TimingArc, Transition};
    use slic_device::{ProcessSample, TechnologyNode};
    use slic_spice::{InputPoint, SimRequest, TransientConfig};
    use slic_units::{Farads, Seconds, Volts};

    fn request() -> SimRequest {
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        SimRequest {
            tech: std::sync::Arc::new(TechnologyNode::n14_finfet()),
            cell,
            arc: TimingArc::new(cell, 0, Transition::Fall),
            point: InputPoint::new(
                Seconds::from_picoseconds(5.0),
                Farads::from_femtofarads(2.0),
                Volts(0.8),
            ),
            seed: ProcessSample::nominal(),
            config: TransientConfig::fast(),
        }
    }

    /// Drives a serve loop over in-memory buffers: send `lines`, collect responses.
    fn converse(lines: &[String], options: &WorkerOptions) -> (Vec<String>, ServeOutcome) {
        let input = lines.join("\n") + "\n";
        let mut output = Vec::new();
        let mut served = 0;
        let outcome = serve_connection(input.as_bytes(), &mut output, &mut served, options)
            .expect("in-memory transport cannot fail");
        let responses = String::from_utf8(output)
            .expect("utf8")
            .lines()
            .map(str::to_string)
            .collect();
        (responses, outcome)
    }

    #[test]
    fn worker_answers_batches_and_honours_shutdown() {
        let wire = WireRequest::encode(&request()).expect("encodes");
        let lines = vec![
            encode_message(&Message::Batch {
                id: 11,
                requests: vec![wire],
            }),
            encode_message(&Message::Shutdown),
        ];
        let (responses, outcome) = converse(&lines, &WorkerOptions::default());
        assert_eq!(outcome, ServeOutcome::Shutdown);
        assert_eq!(responses.len(), 2, "hello plus one results line");
        let Message::Hello(hello) = decode_message(&responses[0]).expect("hello") else {
            panic!("first line must be the handshake");
        };
        assert!(hello.validate().is_ok());
        let Message::Results { id, results } = decode_message(&responses[1]).expect("results")
        else {
            panic!("second line must be the results");
        };
        assert_eq!(id, 11);
        assert_eq!(results.len(), 1);
        assert!(results[0].decode().expect("decodes").is_ok());
    }

    #[test]
    fn batch_limit_drops_the_connection_without_a_reply() {
        let wire = WireRequest::encode(&request()).expect("encodes");
        let batch = |id| {
            encode_message(&Message::Batch {
                id,
                requests: vec![wire.clone()],
            })
        };
        let options = WorkerOptions {
            max_batches: Some(1),
            ..WorkerOptions::default()
        };
        let (responses, outcome) = converse(&[batch(1), batch(2)], &options);
        assert_eq!(outcome, ServeOutcome::BatchLimit);
        assert_eq!(
            responses.len(),
            2,
            "hello and the first batch's results only — the second batch dies unanswered"
        );
    }

    #[test]
    fn undecodable_lane_gets_an_error_entry_without_poisoning_the_batch() {
        let good = WireRequest::encode(&request()).expect("encodes");
        let bad_line = encode_message(&Message::Batch {
            id: 5,
            requests: vec![good.clone(), good],
        })
        .replace("hist-14nm-finfet", "hist-XXnm-finfet");
        let (responses, _) = converse(&[bad_line], &WorkerOptions::default());
        let Message::Results { results, .. } = decode_message(&responses[1]).expect("results")
        else {
            panic!("expected results");
        };
        assert_eq!(results.len(), 2);
        assert!(
            results.iter().all(|r| matches!(r.decode(), Ok(Err(_)))),
            "unknown technology lanes error out"
        );
    }

    #[test]
    fn pings_are_answered_with_matching_pongs() {
        let lines = vec![
            encode_message(&Message::Ping { id: 3 }),
            encode_message(&Message::Ping { id: 9 }),
            encode_message(&Message::Shutdown),
        ];
        let (responses, outcome) = converse(&lines, &WorkerOptions::default());
        assert_eq!(outcome, ServeOutcome::Shutdown);
        assert_eq!(responses.len(), 3, "hello plus two pongs");
        for (line, want) in responses[1..].iter().zip([3, 9]) {
            let Message::Pong { id } = decode_message(line).expect("pong") else {
                panic!("expected a pong, got {line}");
            };
            assert_eq!(id, want);
        }
    }

    #[test]
    fn fault_plan_drops_the_connection_after_its_message_quota() {
        let wire = WireRequest::encode(&request()).expect("encodes");
        let batch = |id| {
            encode_message(&Message::Batch {
                id,
                requests: vec![wire.clone()],
            })
        };
        let options = WorkerOptions {
            fault: Some(FaultPlan {
                drop_after_messages: Some(1),
                ..FaultPlan::default()
            }),
            ..WorkerOptions::default()
        };
        let (responses, outcome) = converse(&[batch(1), batch(2)], &options);
        assert_eq!(outcome, ServeOutcome::FaultDrop);
        assert_eq!(
            responses.len(),
            2,
            "hello and the first batch's results; the second message dies unanswered"
        );
    }

    #[test]
    fn fault_plan_garbles_every_nth_batch() {
        let wire = WireRequest::encode(&request()).expect("encodes");
        let batch = |id| {
            encode_message(&Message::Batch {
                id,
                requests: vec![wire.clone()],
            })
        };
        let options = WorkerOptions {
            fault: Some(FaultPlan {
                garbage_every: Some(2),
                ..FaultPlan::default()
            }),
            ..WorkerOptions::default()
        };
        let (responses, outcome) = converse(
            &[batch(1), batch(2), encode_message(&Message::Shutdown)],
            &options,
        );
        assert_eq!(outcome, ServeOutcome::Shutdown);
        assert_eq!(responses.len(), 3, "hello, results, garbage");
        assert!(decode_message(&responses[1]).is_ok(), "batch 1 is honest");
        assert!(
            decode_message(&responses[2]).is_err(),
            "batch 2 must be garbage: {}",
            responses[2]
        );
    }

    #[test]
    fn malformed_traffic_ends_the_connection() {
        let (responses, outcome) = converse(
            &["{\"type\":\"warp\"}".to_string()],
            &WorkerOptions::default(),
        );
        assert_eq!(outcome, ServeOutcome::Disconnected);
        assert_eq!(responses.len(), 1, "only the hello was written");
    }
}
