//! The simulation-backend boundary: where a transient solve actually executes.
//!
//! The [`CharacterizationEngine`](crate::engine::CharacterizationEngine) owns *policy* —
//! counting, caching, single-flight deduplication, lane fan-out — while a
//! [`SimulationBackend`] owns *mechanism*: given a batch of fully-specified
//! [`SimRequest`]s, return one [`SimResult`] per lane.  Splitting the two turns "where do
//! simulations run" into a deployment choice:
//!
//! * [`LocalBackend`] — the in-process batched kernel ([`crate::batch`]), the default and
//!   the reference implementation every other backend must match bitwise;
//! * `FarmBackend` (in the `slic-farm` crate) — fans batches out to remote worker
//!   processes over a JSON-lines wire protocol, with failover back to a [`LocalBackend`].
//!
//! Because the engine keeps the counter/cache/single-flight layering on its own side of
//! the boundary, swapping backends cannot change an artifact: every lane still counts as
//! exactly one paid simulation, repeated coordinates are still answered from the cache,
//! and the measurements themselves are bitwise identical as long as the backend runs the
//! same kernel (which the wire protocol's kernel-version handshake enforces).

use crate::batch::integrate_batch;
use crate::input::InputPoint;
use crate::measure::TimingMeasurement;
use crate::simd::integrate_batch_simd;
use crate::transient::{TransientConfig, TransientProblem};
use slic_cells::{Cell, EquivalentInverter, TimingArc};
use slic_device::{ProcessSample, TechnologyNode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One fully-specified transient simulation: everything a backend — in-process or on the
/// other end of a socket — needs to reproduce the solve bit-for-bit.
///
/// The technology is shared behind an [`Arc`]: requests are built once per lane on the
/// hot path, and the node (with its heap-allocated name and device parameters) must not
/// be deep-cloned per simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRequest {
    /// The technology node the cell is built in.
    pub tech: Arc<TechnologyNode>,
    /// The cell under test.
    pub cell: Cell,
    /// The switching arc being exercised.
    pub arc: TimingArc,
    /// Input slew / output load / supply.
    pub point: InputPoint,
    /// Process-variation sample.
    pub seed: ProcessSample,
    /// Transient-solver settings.
    pub config: TransientConfig,
}

/// The outcome of one lane: a measurement, or a rendered error message.
///
/// Errors are carried as strings so they survive a wire round trip unchanged; the engine
/// turns them back into the same panic a local solve failure produces.
pub type SimResult = Result<TimingMeasurement, String>;

/// Anything that can execute a batch of transient simulations.
///
/// Implementations must be thread-safe: the engine dispatches batches from rayon worker
/// threads.  `solve_batch` must return exactly one result per request, in request order,
/// and lane `i` must be bitwise identical to what [`LocalBackend`] produces for the same
/// request — the simulation cache and every artifact-equality guarantee depend on it.
pub trait SimulationBackend: Send + Sync {
    /// A short name for logs and `Debug` output (e.g. `"local"`, `"farm"`).
    fn name(&self) -> &str;

    /// Solves every request, returning one result per lane in request order.
    fn solve_batch(&self, requests: &[SimRequest]) -> Vec<SimResult>;

    /// Aggregate kernel work counters across every batch this backend has solved, when
    /// the backend instruments its kernel ([`LocalBackend`] does; remote backends, which
    /// cannot see their workers' counters, report `None`).
    fn kernel_stats(&self) -> Option<KernelStatsSnapshot> {
        None
    }
}

/// Aggregate kernel work counters of a backend, for the post-run summary: how many
/// simulations the kernel integrated and how much work each cost on average.
///
/// Lanes that fail to complete their transition surface as lane errors before their
/// counters are folded in, so the aggregates cover completed simulations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStatsSnapshot {
    /// Whether the SIMD quad kernel produced these numbers.
    pub simd: bool,
    /// Completed simulations.
    pub sims: u64,
    /// Accepted integration steps.
    pub steps: u64,
    /// Step attempts rejected by the embedded error estimate.
    pub rejected_steps: u64,
    /// Transistor-model evaluations.
    pub device_evals: u64,
    /// SIMD quad step attempts (zero for the scalar kernel).
    pub quad_rounds: u64,
    /// Real lanes advanced by those quad attempts.
    pub active_lane_rounds: u64,
}

impl KernelStatsSnapshot {
    /// Accepted steps per completed simulation.
    pub fn steps_per_sim(&self) -> f64 {
        if self.sims == 0 {
            0.0
        } else {
            self.steps as f64 / self.sims as f64
        }
    }

    /// Transistor-model evaluations per completed simulation.
    pub fn device_evals_per_sim(&self) -> f64 {
        if self.sims == 0 {
            0.0
        } else {
            self.device_evals as f64 / self.sims as f64
        }
    }

    /// Fraction of SIMD quad slots occupied by real lanes, when the SIMD kernel ran.
    pub fn quad_occupancy(&self) -> Option<f64> {
        if self.quad_rounds == 0 {
            None
        } else {
            Some(self.active_lane_rounds as f64 / (4 * self.quad_rounds) as f64)
        }
    }
}

/// Thread-safe accumulator behind [`LocalBackend`]: one relaxed atomic add per counter
/// per batch, so instrumenting the kernel costs nothing on the per-lane hot path.
#[derive(Debug, Default)]
struct KernelStatsCell {
    sims: AtomicU64,
    steps: AtomicU64,
    rejected_steps: AtomicU64,
    device_evals: AtomicU64,
    quad_rounds: AtomicU64,
    active_lane_rounds: AtomicU64,
}

/// The in-process backend: the batched Bogacki–Shampine kernel of [`crate::batch`], or —
/// when constructed with [`LocalBackend::with_simd`] — the SIMD quad worklist of
/// [`crate::simd`].
///
/// The equivalent inverter is rebuilt only when the `(tech, cell, seed)` triple changes
/// between consecutive lanes (sweeps share one seed across every lane), mirroring what the
/// engine did before the backend boundary existed — so measurements are bitwise identical
/// to every artifact produced since.  Clones share one kernel-stats accumulator, so
/// engines fanning batches out across threads still aggregate into one snapshot.
#[derive(Debug, Clone, Default)]
pub struct LocalBackend {
    simd: bool,
    stats: Arc<KernelStatsCell>,
}

impl LocalBackend {
    /// Creates the in-process backend running the scalar batched kernel (the bitwise
    /// reference every other backend must match).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the in-process backend with the SIMD quad kernel enabled or disabled.
    ///
    /// With `simd = true` the backend's measurements carry the SIMD accuracy contract
    /// (≤0.5 % of golden) instead of the scalar path's bitwise guarantee; the flag is
    /// deliberately *not* part of [`TransientConfig`] so enabling it cannot move any
    /// simulation cache key.
    pub fn with_simd(simd: bool) -> Self {
        Self {
            simd,
            stats: Arc::default(),
        }
    }

    /// Whether this backend runs the SIMD quad kernel.
    pub fn simd_enabled(&self) -> bool {
        self.simd
    }
}

impl SimulationBackend for LocalBackend {
    fn name(&self) -> &str {
        if self.simd {
            "local-simd"
        } else {
            "local"
        }
    }

    fn kernel_stats(&self) -> Option<KernelStatsSnapshot> {
        Some(KernelStatsSnapshot {
            simd: self.simd,
            sims: self.stats.sims.load(Ordering::Relaxed),
            steps: self.stats.steps.load(Ordering::Relaxed),
            rejected_steps: self.stats.rejected_steps.load(Ordering::Relaxed),
            device_evals: self.stats.device_evals.load(Ordering::Relaxed),
            quad_rounds: self.stats.quad_rounds.load(Ordering::Relaxed),
            active_lane_rounds: self.stats.active_lane_rounds.load(Ordering::Relaxed),
        })
    }

    fn solve_batch(&self, requests: &[SimRequest]) -> Vec<SimResult> {
        let mut results: Vec<Option<SimResult>> = vec![None; requests.len()];
        // Validate configs first (memoized on consecutive identical configs, the common
        // case): an invalid lane gets an error result instead of poisoning the batch.
        let mut cfg_memo: Option<(TransientConfig, Result<(), String>)> = None;
        let mut problems = Vec::with_capacity(requests.len());
        let mut lanes = Vec::with_capacity(requests.len());
        let mut memo: Option<(Arc<TechnologyNode>, ProcessSample, Cell, EquivalentInverter)> = None;
        for (i, req) in requests.iter().enumerate() {
            if !matches!(&cfg_memo, Some((c, _)) if *c == req.config) {
                cfg_memo = Some((req.config, req.config.validate()));
            }
            if let Some((_, Err(msg))) = &cfg_memo {
                results[i] = Some(Err(format!("invalid transient configuration: {msg}")));
                continue;
            }
            // Pointer equality first: lanes of one engine share one Arc, so the common
            // case never compares node contents.
            if !matches!(&memo, Some((t, s, c, _)) if (Arc::ptr_eq(t, &req.tech) || **t == *req.tech) && s == &req.seed && *c == req.cell)
            {
                let eq = EquivalentInverter::build(&req.tech, req.cell, &req.seed);
                memo = Some((req.tech.clone(), req.seed, req.cell, eq));
            }
            // slic-lint: allow(P1) -- structural: the branch above fills the memo when it is None.
            let (_, _, _, eq) = memo.as_ref().expect("memo populated");
            problems.push(TransientProblem::new(eq, &req.arc, &req.point, &req.config));
            lanes.push(i);
        }
        let lane_results = if self.simd {
            let (lane_results, simd_stats) = integrate_batch_simd(&problems);
            self.stats
                .quad_rounds
                .fetch_add(simd_stats.quad_rounds, Ordering::Relaxed);
            self.stats
                .active_lane_rounds
                .fetch_add(simd_stats.active_lane_rounds, Ordering::Relaxed);
            lane_results
        } else {
            integrate_batch(&problems)
        };
        let mut batch_stats = crate::transient::TransientStats::default();
        let mut completed = 0u64;
        for (result, i) in lane_results.into_iter().zip(lanes) {
            results[i] = Some(match result {
                Ok((m, stats)) => {
                    batch_stats.merge(&stats);
                    completed += 1;
                    Ok(m)
                }
                Err(err) => Err(err.to_string()),
            });
        }
        self.stats.sims.fetch_add(completed, Ordering::Relaxed);
        self.stats
            .steps
            .fetch_add(batch_stats.steps, Ordering::Relaxed);
        self.stats
            .rejected_steps
            .fetch_add(batch_stats.rejected_steps, Ordering::Relaxed);
        self.stats
            .device_evals
            .fetch_add(batch_stats.device_evals, Ordering::Relaxed);
        results
            .into_iter()
            // slic-lint: allow(P1) -- structural: every lane index is pushed into `lanes` and filled from `lane_results` above.
            .map(|r| r.expect("every lane resolved"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::simulate_switching;
    use slic_cells::{CellKind, DriveStrength, Transition};
    use slic_units::{Farads, Seconds, Volts};

    fn request(sin_ps: f64, vdd: f64) -> SimRequest {
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        SimRequest {
            tech: Arc::new(TechnologyNode::n14_finfet()),
            cell,
            arc: TimingArc::new(cell, 0, Transition::Fall),
            point: InputPoint::new(
                Seconds::from_picoseconds(sin_ps),
                Farads::from_femtofarads(2.0),
                Volts(vdd),
            ),
            seed: ProcessSample::nominal(),
            config: TransientConfig::fast(),
        }
    }

    #[test]
    fn local_backend_matches_the_scalar_solver_bitwise() {
        let backend = LocalBackend::new();
        let requests = vec![request(2.0, 0.8), request(5.0, 0.9), request(9.0, 0.7)];
        let results = backend.solve_batch(&requests);
        for (req, result) in requests.iter().zip(&results) {
            let eq = EquivalentInverter::build(&req.tech, req.cell, &req.seed);
            let scalar = simulate_switching(&eq, &req.arc, &req.point, &req.config)
                .expect("scalar solve succeeds");
            assert_eq!(result.as_ref().ok(), Some(&scalar));
        }
    }

    #[test]
    fn invalid_config_yields_a_lane_error_not_a_panic() {
        let backend = LocalBackend::new();
        let mut bad = request(5.0, 0.8);
        bad.config.dv_max_fraction = 0.5;
        let good = request(5.0, 0.8);
        let results = backend.solve_batch(&[bad, good.clone()]);
        assert!(results[0]
            .as_ref()
            .is_err_and(|e| e.contains("dv_max_fraction")));
        assert!(results[1].is_ok(), "a bad lane must not poison its batch");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        assert!(LocalBackend::new().solve_batch(&[]).is_empty());
        assert_eq!(LocalBackend::new().name(), "local");
    }
}
