//! Fig. 8: average testing error of the mean and standard deviation of output slew `Sout`
//! for a 28-nm library under process variation, comparing "Proposed Model + Bayesian
//! Inference" against "Proposed Model + LSE" (the paper reports 18×/19× reductions).

use criterion::{criterion_group, criterion_main, Criterion};
use slic::nominal::MethodKind;
use slic::prelude::*;
use slic::statistical::{StatMetric, StatisticalStudy, StatisticalStudyConfig};
use slic_bench::{banner, bench_historical_db, planar_history};

fn study_config() -> StatisticalStudyConfig {
    StatisticalStudyConfig {
        validation_points: 40,
        process_seeds: 80,
        training_counts: vec![1, 2, 3, 5, 10, 20],
        ..StatisticalStudyConfig::default()
    }
}

fn regenerate(db: &HistoricalDatabase) {
    banner(
        "Fig. 8",
        "Statistical 28-nm output-slew characterization: E(mu_Sout) and E(sigma_Sout) vs training samples",
    );
    let study = StatisticalStudy::new(TechnologyNode::target_28nm(), db, study_config());
    let cell = Cell::new(CellKind::Nor2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Rise);
    let result = study.run(cell, &arc);
    for (metric, title) in [
        (StatMetric::MeanSlew, "E(mu_Sout)"),
        (StatMetric::StdSlew, "E(sigma_Sout)"),
    ] {
        println!("\n{title} for {}:", arc.id());
        println!("{}", result.to_markdown(metric));
        let bayes = result
            .curves_for(MethodKind::ProposedBayesian)
            .as_method_curve(metric);
        let lse = result
            .curves_for(MethodKind::ProposedLse)
            .as_method_curve(metric);
        let target = bayes.final_error().max(lse.final_error());
        let vs_lse = result.speedup_at(
            metric,
            target,
            MethodKind::ProposedBayesian,
            MethodKind::ProposedLse,
        );
        let vs_lut = result.speedup_at(
            metric,
            target,
            MethodKind::ProposedBayesian,
            MethodKind::Lut,
        );
        println!(
            "simulation speedup at {target:.2}%: vs LSE = {}, vs statistical LUT = {}",
            vs_lse.map_or("n/a".to_string(), |x| format!("{x:.1}x")),
            vs_lut.map_or("n/a".to_string(), |x| format!("{x:.1}x")),
        );
    }
    println!("\n(paper: the Bayesian prior gives 18x / 19x reductions for the slew statistics)");
}

fn bench(c: &mut Criterion) {
    let db = bench_historical_db(&planar_history());
    regenerate(&db);

    // Kernel: a single per-seed extraction pair (delay + slew) from 3 conditions — the unit
    // of the proposed statistical flow's cost.
    let config = study_config();
    let study = StatisticalStudy::new(TechnologyNode::target_28nm(), &db, config);
    let engine = study.engine();
    let cell = Cell::new(CellKind::Nor2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Rise);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let seed = engine.tech().variation().sample(&mut rng);
    let points = engine.input_space().sample_latin_hypercube(&mut rng, 3);
    c.bench_function("fig8_three_condition_seed_simulation", |b| {
        b.iter(|| engine.sweep(cell, &arc, &points, &seed))
    });
}

criterion_group! {
    name = benches;
    config = slic_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
