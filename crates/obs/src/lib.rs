//! `slic-obs`: structured run tracing and a unified metrics registry.
//!
//! The suite's artifacts are bit-identical across backends, shard counts and farm
//! failure patterns — which means *performance* evidence cannot live in artifacts at
//! all.  This crate is the display-only telemetry layer the rest of the workspace
//! threads through its hot paths:
//!
//! * [`trace::TraceRecorder`] — an opt-in JSON-lines span/event recorder (monotonic
//!   timestamps, thread ids, parent correlation) behind `observability.trace` /
//!   `--trace out.jsonl`.  Disabled recorders are free: every call no-ops on a `None`.
//! * [`metrics::MetricsRegistry`] — counters and fixed-bucket histograms with a
//!   sorted, deterministic snapshot, unifying the per-subsystem counter structs
//!   (`DispatchSnapshot`, `FarmStats`, `KernelStatsSnapshot`, cache hit/miss) behind
//!   one post-run summary surface.
//! * [`profile`] — the analysis side: a dependency-free parser for the trace schema
//!   and the report builder behind `slic profile <trace.jsonl>`.
//! * [`ledger`] — the cross-run side: an append-only, flock-guarded `runs.jsonl` of
//!   [`ledger::RunRecord`]s (config fingerprint, seed, wall time, sims paid vs
//!   cached, artifact hash, full metrics snapshot) behind `observability.ledger` /
//!   `--ledger runs.jsonl`.
//! * [`diff`] — the regression gate: threshold-driven comparison of two profile
//!   reports (`slic profile --diff`) or two ledger records (`slic history --diff`),
//!   exiting nonzero on drift past `observability.diff.*` thresholds.
//! * [`perfetto`] — Chrome trace-event export (`slic profile --format chrome`) so a
//!   farmed run's span tree can be walked interactively in ui.perfetto.dev.
//! * [`progress`] — a live [`progress::ProgressMeter`]: periodic `progress` trace
//!   events plus an optional stderr progress line (units done, sims paid vs cached,
//!   farmed lanes, ETA), rate-limited off the monotonic clock.
//!
//! Tracing is display-only **by construction**: nothing here feeds a result path, and
//! the only wall-clock read in the workspace lives in [`clock::MonotonicClock`] behind
//! the [`clock::Clock`] trait (the scoped `slic-lint` D1 exemption covers exactly this
//! crate).  `RunArtifact` bytes are identical with tracing on or off — CI `cmp`-gates
//! that invariant.

pub mod clock;
pub mod diff;
pub mod ledger;
pub mod metrics;
pub mod perfetto;
pub mod profile;
pub mod progress;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use diff::{DiffReport, DiffThresholds};
pub use ledger::RunRecord;
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use progress::ProgressMeter;
pub use trace::{SpanGuard, TraceRecorder};

/// The bundle the pipeline threads through engine, backends and runner: one trace
/// recorder plus one metrics registry, both cheap to clone and free when disabled.
#[derive(Debug, Clone, Default)]
pub struct Observability {
    /// The span/event recorder; [`TraceRecorder::disabled`] (the default) is a no-op.
    pub trace: TraceRecorder,
    /// The shared counter/histogram registry, always live (counters are cheap).
    pub metrics: MetricsRegistry,
    /// The live progress meter; [`ProgressMeter::disabled`] (the default) is a no-op.
    pub progress: ProgressMeter,
}

impl Observability {
    /// A fully disabled bundle: no trace sink, empty registry.
    pub fn disabled() -> Self {
        Self::default()
    }
}
