//! Work-unit enumeration: from a library and a resolved config to a flat, parallelizable
//! list of `(cell, arc, metric, method)` units.

use crate::config::ResolvedConfig;
use crate::error::PipelineError;
use serde::{Deserialize, Serialize};
use slic::nominal::MethodKind;
use slic_bayes::TimingMetric;
use slic_cells::{Cell, Library, TimingArc};

/// One independently executable unit of characterization work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkUnit {
    /// The cell being characterized.
    pub cell: Cell,
    /// The timing arc.
    pub arc: TimingArc,
    /// The timing quantity.
    pub metric: TimingMetric,
    /// The extraction method.
    pub method: MethodKind,
}

impl WorkUnit {
    /// Stable identifier, e.g. `"NAND2_X1/A0/FALL#delay#ProposedBayesian"`.
    pub fn id(&self) -> String {
        format!("{}#{}#{:?}", self.arc.id(), self.metric, self.method)
    }

    /// Deterministic sampling seed shared by every unit of the same arc.
    ///
    /// Sharing across metrics *and* methods is deliberate: all units of one arc then
    /// request identical training/validation sweeps, so the simulation cache serves every
    /// unit after the first for free (one transient yields both measurements), and the
    /// per-method errors in the artifact are measured on the same validation set and are
    /// directly comparable.
    pub fn sampling_seed(&self, run_seed: u64) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in self.arc.id().bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash ^ run_seed
    }
}

/// The full enumeration of work units for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationPlan {
    library_name: String,
    units: Vec<WorkUnit>,
}

impl CharacterizationPlan {
    /// Enumerates `cells × primary arcs × metrics × methods` from a resolved configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Config`] when the enumeration is empty.
    pub fn from_config(config: &ResolvedConfig) -> Result<Self, PipelineError> {
        Self::enumerate(&config.library, &config.metrics, &config.methods)
    }

    /// Enumerates a plan from explicit parts (the library is assumed pre-filtered).
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Config`] when the enumeration is empty.
    pub fn enumerate(
        library: &Library,
        metrics: &[TimingMetric],
        methods: &[MethodKind],
    ) -> Result<Self, PipelineError> {
        let mut units = Vec::new();
        for &cell in library.cells() {
            for arc in TimingArc::primary_arcs(cell) {
                for &metric in metrics {
                    for &method in methods {
                        units.push(WorkUnit {
                            cell,
                            arc,
                            metric,
                            method,
                        });
                    }
                }
            }
        }
        if units.is_empty() {
            return Err(PipelineError::config(
                "characterization plan is empty (no cells, metrics or methods selected)",
            ));
        }
        Ok(Self {
            library_name: library.name().to_string(),
            units,
        })
    }

    /// The units in execution order.
    pub fn units(&self) -> &[WorkUnit] {
        &self.units
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Returns `true` when the plan holds no units (never, for a constructed plan).
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Name of the library the plan was enumerated from.
    pub fn library_name(&self) -> &str {
        &self.library_name
    }

    /// The distinct arcs covered by the plan, in first-appearance order.
    pub fn arcs(&self) -> Vec<TimingArc> {
        let mut arcs = Vec::new();
        for unit in &self.units {
            if !arcs.contains(&unit.arc) {
                arcs.push(unit.arc);
            }
        }
        arcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;

    #[test]
    fn default_plan_covers_trio_both_metrics() {
        let config = RunConfig::default().resolve().unwrap();
        let plan = CharacterizationPlan::from_config(&config).unwrap();
        // 3 cells x 2 primary arcs x 2 metrics x 1 method.
        assert_eq!(plan.len(), 12);
        assert_eq!(plan.arcs().len(), 6);
        assert_eq!(plan.library_name(), "paper-trio");
        assert!(!plan.is_empty());
    }

    #[test]
    fn filters_shrink_the_plan() {
        let config = RunConfig {
            library: Some("standard".into()),
            cell_pattern: Some("INV".into()),
            drives: Some(vec!["X1".into()]),
            metrics: Some(vec!["delay".into()]),
            methods: Some(vec!["bayesian".into(), "lse".into()]),
            ..Default::default()
        }
        .resolve()
        .unwrap();
        let plan = CharacterizationPlan::from_config(&config).unwrap();
        // 1 cell (INV_X1; the standard library also has INV_X2) x 2 arcs x 1 metric x 2 methods.
        assert_eq!(plan.len(), 4);
        assert!(plan.units().iter().all(|u| u.cell.kind().name() == "INV"));
    }

    #[test]
    fn sampling_seeds_pair_metrics_and_separate_arcs() {
        let config = RunConfig::default().resolve().unwrap();
        let plan = CharacterizationPlan::from_config(&config).unwrap();
        let units = plan.units();
        let delay = units
            .iter()
            .find(|u| u.metric == TimingMetric::Delay)
            .unwrap();
        let slew = units
            .iter()
            .find(|u| u.arc == delay.arc && u.metric == TimingMetric::OutputSlew)
            .unwrap();
        assert_eq!(
            delay.sampling_seed(1),
            slew.sampling_seed(1),
            "metrics of one arc must share sampling points for cache reuse"
        );
        let lse_twin = WorkUnit {
            method: MethodKind::ProposedLse,
            ..*delay
        };
        assert_eq!(
            delay.sampling_seed(1),
            lse_twin.sampling_seed(1),
            "methods of one arc must share sampling points so their errors are comparable"
        );
        let other = units.iter().find(|u| u.arc != delay.arc).unwrap();
        assert_ne!(delay.sampling_seed(1), other.sampling_seed(1));
        assert_ne!(delay.sampling_seed(1), delay.sampling_seed(2));
    }

    #[test]
    fn plan_serializes() {
        let config = RunConfig::default().resolve().unwrap();
        let plan = CharacterizationPlan::from_config(&config).unwrap();
        let text = serde_json::to_string(&plan).unwrap();
        let back: CharacterizationPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(plan, back);
    }
}
