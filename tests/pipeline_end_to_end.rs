//! End-to-end integration test of the library-scale pipeline: learn → plan →
//! characterize (parallel, shared counter + cache) → persist → export.

use slic_pipeline::{CharacterizationPlan, PipelineRunner, RunArtifact, RunConfig};

fn quick_config() -> RunConfig {
    // The documented defaults are exactly the paper's quick setup; pin the seed so the
    // cache-replay assertions below are about determinism, not luck.
    RunConfig {
        seed: Some(99),
        ..RunConfig::default()
    }
}

#[test]
fn quick_profile_characterizes_the_paper_trio_end_to_end() {
    let resolved = quick_config()
        .resolve()
        .expect("default quick config resolves");
    let runner = PipelineRunner::new(resolved).expect("quick profile is valid");
    let plan = CharacterizationPlan::from_config(runner.config()).expect("non-empty plan");
    // paper trio: 3 cells x 2 primary arcs x 2 metrics x 1 method.
    assert_eq!(plan.len(), 12);

    // Stage 1: learn. All cost flows through the runner's shared counter.
    let learning = runner.learn();
    assert!(!learning.database.is_empty());
    assert_eq!(learning.simulation_cost, runner.counter().count());

    // The learning stage must survive a JSON round trip (the resumable `slic learn` path).
    let db_json = learning.database.to_json().expect("database serializes");
    let reloaded =
        slic::prelude::HistoricalDatabase::from_json(&db_json).expect("database reloads");
    assert_eq!(reloaded, learning.database);

    // Stage 2: characterize against the reloaded database.
    let artifact = runner
        .characterize(&plan, &reloaded)
        .expect("characterization runs");
    assert_eq!(artifact.planned_units, 12);
    assert_eq!(artifact.units.len(), 12);
    assert_eq!(
        artifact.characterized.arcs.len(),
        6,
        "every arc obtains both metric fits"
    );
    // The shared counter total is reported in the artifact and covers learn + characterize.
    assert_eq!(artifact.total_simulations, runner.counter().count());
    assert!(artifact.total_simulations > learning.simulation_cost);
    // Delay/slew unit pairs share sampling points, so each transient serves two metrics:
    // the second metric of every arc is answered entirely from the cache.
    assert!(
        artifact.cache_hits > 0,
        "metric pairing must produce cache hits"
    );
    // Quick-profile Bayesian fits on the target node are accurate.
    for unit in &artifact.units {
        assert!(
            unit.error_percent.is_finite() && unit.error_percent < 10.0,
            "{} {}: {}%",
            unit.arc_id,
            unit.metric,
            unit.error_percent
        );
        assert!(unit.params.is_some(), "Bayesian units carry parameters");
    }

    // Stage 3: persist and reload the run artifact.
    let json = artifact.to_json().expect("artifact serializes");
    let back = RunArtifact::from_json(&json).expect("artifact reloads");
    assert_eq!(back, artifact);

    // Stage 4: Liberty export from the fitted parameters, at zero simulation cost.
    let sims_before = runner.counter().count();
    let liberty = artifact
        .characterized
        .to_liberty(runner.engine(), runner.config().export_grid)
        .expect("fitted arcs exist");
    assert_eq!(
        runner.counter().count(),
        sims_before,
        "fitted export must not simulate"
    );
    for cell in runner.config().library.cells() {
        assert!(
            liberty.contains(&format!("cell ({})", cell.name())),
            "liberty must contain {}",
            cell.name()
        );
    }
    assert!(liberty.contains("cell_rise"));
    assert!(liberty.contains("cell_fall"));
    assert!(liberty.contains("rise_transition"));
    assert!(liberty.contains("fall_transition"));
    assert_eq!(liberty.matches('{').count(), liberty.matches('}').count());
}

#[test]
fn repeated_run_on_a_warm_cache_pays_almost_nothing() {
    let resolved = quick_config().resolve().expect("config resolves");
    let first = PipelineRunner::new(resolved.clone()).expect("runner builds");
    let (_, first_artifact) = first.run().expect("first run completes");
    assert!(first_artifact.total_simulations > 0);

    // Second run, same configuration, sharing the first run's cache.
    let second =
        PipelineRunner::with_cache(resolved, first.cache().clone()).expect("runner builds");
    let (_, second_artifact) = second.run().expect("second run completes");

    assert!(
        second_artifact.cache_hits > first_artifact.cache_hits,
        "a repeated run must hit the warm cache"
    );
    assert_eq!(
        second_artifact.total_simulations, 0,
        "an identical run replays entirely from the cache"
    );
    // And it reproduces the same fits.
    assert_eq!(second_artifact.characterized, first_artifact.characterized);
}

#[test]
fn artifact_files_round_trip_on_disk() {
    let resolved = quick_config().resolve().expect("config resolves");
    let runner = PipelineRunner::new(resolved).expect("runner builds");
    let (_, artifact) = runner.run().expect("pipeline runs");

    let dir = std::env::temp_dir().join(format!("slic-pipeline-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("run.json");
    artifact.save(&path).expect("artifact saves");
    let reloaded = RunArtifact::load(&path).expect("artifact loads");
    assert_eq!(reloaded, artifact);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_transient_configuration_is_surfaced_as_an_error() {
    use slic_spice::{CharacterizationEngine, TransientConfig};
    let bad = TransientConfig {
        dv_max_fraction: 0.5,
        ..TransientConfig::fast()
    };
    let err =
        CharacterizationEngine::with_config(slic::prelude::TechnologyNode::target_14nm(), bad)
            .expect_err("invalid config must be rejected");
    assert!(err.to_string().contains("dv_max_fraction"));
}
