//! Property tests: the lexer must be total.  Whatever bytes a source file contains —
//! truncated strings, stray quotes, non-UTF-8 salvaged by `from_utf8_lossy`, unclosed
//! block comments — `lex` returns a token stream and never panics, and the line numbers
//! it reports stay inside the input.

use proptest::prelude::*;
use slic_lint::lexer::lex;

/// Shared postcondition: lexing terminated and produced sane line numbers.
fn check_totality(text: &str) -> Result<(), TestCaseError> {
    let tokens = lex(text);
    let line_count = text.lines().count().max(1) as u32;
    for token in &tokens {
        if token.line == 0 || token.line > line_count {
            return Err(TestCaseError::fail(format!(
                "token {:?} reports line {} of {}",
                token.text, token.line, line_count
            )));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(
        raw in proptest::collection::vec(0u32..256u32, 0..256usize),
    ) {
        let bytes: Vec<u8> = raw.iter().map(|b| *b as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        check_totality(&text)?;
    }

    #[test]
    fn lexer_never_panics_on_printable_ascii(
        raw in proptest::collection::vec(32u32..127u32, 0..256usize),
    ) {
        // Printable ASCII exercises the interesting paths — quote pairing, comment
        // openers, numeric literals, lifetimes — far more often than random bytes do.
        let bytes: Vec<u8> = raw.iter().map(|b| *b as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        check_totality(&text)?;
    }

    #[test]
    fn lexer_never_panics_on_token_fragments(
        picks in proptest::collection::vec(0u32..16u32, 0..64usize),
    ) {
        // Adversarial fragments glued together: the constructs whose lookahead has bitten
        // before (char vs lifetime, raw strings, escapes, trailing dots).
        const FRAGMENTS: [&str; 16] = [
            "'a", "'a'", "'\\''", "'\"'", "\"", "\\\"", "r#\"", "\"#", "//", "/*", "*/",
            "1.5e", "0x", "1.", "b'", "\n",
        ];
        let text: String = picks
            .iter()
            .map(|p| FRAGMENTS[*p as usize % FRAGMENTS.len()])
            .collect();
        check_totality(&text)?;
    }
}
