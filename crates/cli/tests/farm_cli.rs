//! End-to-end farm tests against the real `slic` binary: spawned-worker fleets, TCP
//! fleets, a worker killed mid-run, cache compaction — always asserting the farm artifact
//! is byte-identical to the single-process artifact of the same configuration.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_slic");

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slic-farm-cli-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Runs `slic <args>`, asserting success; returns stdout.
fn slic(dir: &Path, args: &[&str]) -> String {
    let output = Command::new(BIN)
        .args(args)
        .current_dir(dir)
        .output()
        .expect("slic runs");
    assert!(
        output.status.success(),
        "`slic {}` failed:\nstdout: {}\nstderr: {}",
        args.join(" "),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8(output.stdout).expect("utf8 stdout")
}

/// Starts `slic worker --listen 127.0.0.1:0`, returning the child and its bound address.
fn start_tcp_worker(max_batches: Option<u64>) -> (Child, String) {
    let mut command = Command::new(BIN);
    command
        .args(["worker", "--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(limit) = max_batches {
        command.args(["--max-batches", &limit.to_string()]);
    }
    let mut child = command.spawn().expect("worker spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("worker announces its address");
    let address = line
        .trim()
        .strip_prefix("worker listening on ")
        .unwrap_or_else(|| panic!("unexpected worker banner: {line:?}"))
        .to_string();
    (child, address)
}

fn read_json(path: &Path) -> serde::Value {
    serde_json::from_str(&std::fs::read_to_string(path).expect("artifact readable"))
        .expect("artifact parses")
}

fn field_u64(value: &serde::Value, name: &str) -> u64 {
    value
        .get(name)
        .and_then(serde::Value::as_f64)
        .unwrap_or_else(|| panic!("artifact field `{name}` missing")) as u64
}

#[test]
fn spawned_farm_artifact_is_byte_identical_and_warm_rerun_is_free() {
    let dir = temp_dir("spawn");
    slic(&dir, &["learn", "--out", "history.json"]);

    // Reference: single-process run against its own fresh disk cache.
    slic(
        &dir,
        &[
            "characterize",
            "--history",
            "history.json",
            "--cache",
            "local-cache.jsonl",
            "--out",
            "run-local.json",
        ],
    );
    // Farm: two spawned subprocess workers, separate fresh cache.
    let stdout = slic(
        &dir,
        &[
            "characterize",
            "--history",
            "history.json",
            "--spawn-workers",
            "2",
            "--cache",
            "farm-cache.jsonl",
            "--out",
            "run-farm.json",
        ],
    );
    assert!(
        stdout.contains("farm: 2 worker(s) connected"),
        "farm banner missing:\n{stdout}"
    );

    let local = std::fs::read(dir.join("run-local.json")).expect("local artifact");
    let farm = std::fs::read(dir.join("run-farm.json")).expect("farm artifact");
    assert_eq!(
        local, farm,
        "a 2-worker farm run must be byte-identical to the local run"
    );
    let fresh = read_json(&dir.join("run-farm.json"));
    assert!(field_u64(&fresh, "total_simulations") > 0);
    assert_eq!(
        field_u64(&fresh, "total_simulations"),
        field_u64(&fresh, "cache_misses"),
        "each unique coordinate was paid exactly once across the farm"
    );

    // Warm rerun against the shared disk cache: zero simulations, zero misses.
    slic(
        &dir,
        &[
            "characterize",
            "--history",
            "history.json",
            "--spawn-workers",
            "2",
            "--cache",
            "farm-cache.jsonl",
            "--out",
            "run-farm-warm.json",
        ],
    );
    let warm = read_json(&dir.join("run-farm-warm.json"));
    assert_eq!(field_u64(&warm, "total_simulations"), 0);
    assert_eq!(field_u64(&warm, "cache_misses"), 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killing_a_tcp_worker_mid_run_fails_over_with_an_identical_artifact() {
    let dir = temp_dir("failover");
    slic(&dir, &["learn", "--out", "history.json"]);
    slic(
        &dir,
        &[
            "characterize",
            "--history",
            "history.json",
            "--out",
            "run-local.json",
        ],
    );

    let (mut survivor, survivor_addr) = start_tcp_worker(None);
    // The doomed worker dies abruptly on its second batch — a deterministic stand-in for
    // `kill -9` mid-batch: the batch is read but never answered.
    let (mut doomed, doomed_addr) = start_tcp_worker(Some(1));

    let stdout = slic(
        &dir,
        &[
            "characterize",
            "--history",
            "history.json",
            "--backend",
            "farm",
            "--workers",
            &format!("{survivor_addr},{doomed_addr}"),
            "--out",
            "run-farm.json",
        ],
    );
    assert!(
        stdout.contains("failover") || stdout.contains("workers live"),
        "farm summary missing:\n{stdout}"
    );

    let doomed_status = doomed.wait().expect("doomed worker exits");
    assert!(
        !doomed_status.success(),
        "the batch-limited worker must die nonzero mid-run"
    );

    let local = std::fs::read(dir.join("run-local.json")).expect("local artifact");
    let farm = std::fs::read(dir.join("run-farm.json")).expect("farm artifact");
    assert_eq!(
        local, farm,
        "losing a worker mid-run must not change a byte of the artifact"
    );

    survivor.kill().ok();
    survivor.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_labels_shard_artifacts_as_partial_and_compact_dedups_the_cache() {
    let dir = temp_dir("shard-report");
    slic(&dir, &["learn", "--out", "history.json"]);
    // Two shards of one plan against one shared disk cache.
    for shard in ["1/2", "2/2"] {
        let out = format!("run-{}.json", shard.replace('/', "-"));
        slic(
            &dir,
            &[
                "characterize",
                "--history",
                "history.json",
                "--shard",
                shard,
                "--cache",
                "cache.jsonl",
                "--out",
                &out,
            ],
        );
    }

    // The satellite bugfix: a shard artifact's report must be labelled partial.
    let report = slic(&dir, &["report", "--run", "run-1-2.json"]);
    assert!(
        report.contains("PARTIAL SHARD ARTIFACT"),
        "shard report must carry the partial label:\n{report}"
    );
    let merged = slic(
        &dir,
        &[
            "merge",
            "--inputs",
            "run-1-2.json,run-2-2.json",
            "--out",
            "merged.json",
        ],
    );
    assert!(merged.contains("merged 2 shards"));
    let full_report = slic(&dir, &["report", "--run", "merged.json"]);
    assert!(
        !full_report.contains("PARTIAL"),
        "a complete artifact must not be labelled partial:\n{full_report}"
    );

    // Compact the shared cache, then prove the snapshot still answers everything: a
    // replay of shard 2 pays zero simulations.
    let compact = slic(&dir, &["cache", "compact", "--cache", "cache.jsonl"]);
    assert!(compact.contains("compacted"), "{compact}");
    slic(
        &dir,
        &[
            "characterize",
            "--history",
            "history.json",
            "--shard",
            "2/2",
            "--cache",
            "cache.jsonl",
            "--out",
            "run-replay.json",
        ],
    );
    let replay = read_json(&dir.join("run-replay.json"));
    assert_eq!(
        field_u64(&replay, "total_simulations"),
        0,
        "the compacted cache must answer every coordinate of the replay"
    );
    assert_eq!(field_u64(&replay, "cache_misses"), 0);

    std::fs::remove_dir_all(&dir).ok();
}
