//! SIMD-kernel parity suite: the quad-lane kernel against the scalar batched path, across
//! the same (cell × arc × slew × load × vdd) grid as the golden-parity suite.
//!
//! Three invariants are asserted:
//!
//! 1. **Accuracy envelope** — every SIMD lane stays within 0.5 % (relative) of its scalar
//!    simulation for delay and output slew, at both configuration presets (the same bound
//!    the CI bench gate enforces against the RK4 golden);
//! 2. **Determinism** — repeating a SIMD batch reproduces identical bits;
//! 3. **Opt-in only** — with `simd = false` the backend is *bitwise* identical to the
//!    scalar solver, so default runs (and their cache keys and artifacts) never move.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use slic_cells::{Cell, CellKind, DriveStrength, EquivalentInverter, TimingArc, Transition};
use slic_device::TechnologyNode;
use slic_spice::{
    simulate_switching, simulate_switching_batch_simd, CharacterizationEngine, InputPoint,
    LocalBackend, TransientConfig,
};
use slic_units::{Farads, Seconds, Volts};
use std::sync::Arc;

const SIMD_TOLERANCE: f64 = 0.005;

fn grid_points() -> Vec<InputPoint> {
    let mut points = Vec::new();
    for sin_ps in [1.0, 5.0, 15.0] {
        for cload_ff in [0.5, 2.0, 5.0] {
            for vdd in [0.65, 0.8, 1.0] {
                points.push(InputPoint::new(
                    Seconds::from_picoseconds(sin_ps),
                    Farads::from_femtofarads(cload_ff),
                    Volts(vdd),
                ));
            }
        }
    }
    points
}

fn grid_cells() -> Vec<Cell> {
    vec![
        Cell::new(CellKind::Inv, DriveStrength::X1),
        Cell::new(CellKind::Nand2, DriveStrength::X2),
        Cell::new(CellKind::Nor2, DriveStrength::X1),
    ]
}

fn relative_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs()
}

#[test]
fn simd_lanes_stay_within_half_percent_of_scalar_across_the_grid() {
    let tech = TechnologyNode::n14_finfet();
    let mut rng = StdRng::seed_from_u64(2015);
    let seeds = tech.variation().sample_n(&mut rng, 6);
    let mut worst = 0.0_f64;
    for config in [TransientConfig::accurate(), TransientConfig::fast()] {
        for cell in grid_cells() {
            // Six seeded lanes: one full quad plus a scalar tail of two.
            let lanes: Vec<EquivalentInverter> = seeds
                .iter()
                .map(|s| EquivalentInverter::build(&tech, cell, s))
                .collect();
            for transition in Transition::BOTH {
                let arc = TimingArc::new(cell, 0, transition);
                for point in grid_points() {
                    let batch = simulate_switching_batch_simd(&lanes, &arc, &point, &config)
                        .expect("valid config");
                    for (i, (eq, lane)) in lanes.iter().zip(batch).enumerate() {
                        let simd = lane.expect("lane completes");
                        let scalar = simulate_switching(eq, &arc, &point, &config).unwrap();
                        let delay_err = relative_err(simd.delay.value(), scalar.delay.value());
                        let slew_err =
                            relative_err(simd.output_slew.value(), scalar.output_slew.value());
                        assert!(
                            delay_err < SIMD_TOLERANCE && slew_err < SIMD_TOLERANCE,
                            "{cell} {transition} lane {i} at {point}: delay err {delay_err:.5}, \
                             slew err {slew_err:.5}"
                        );
                        worst = worst.max(delay_err).max(slew_err);
                    }
                }
            }
        }
    }
    // The envelope must not be sitting on the edge; rounding differences across
    // platforms must not flake the suite.
    assert!(worst < 0.8 * SIMD_TOLERANCE, "margin too thin: {worst:.5}");
}

#[test]
fn simd_batches_are_bitwise_deterministic() {
    let tech = TechnologyNode::n28_bulk();
    let cell = Cell::new(CellKind::Nand2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let mut rng = StdRng::seed_from_u64(7);
    let seeds = tech.variation().sample_n(&mut rng, 5);
    let lanes: Vec<EquivalentInverter> = seeds
        .iter()
        .map(|s| EquivalentInverter::build(&tech, cell, s))
        .collect();
    let config = TransientConfig::fast();
    for point in grid_points() {
        let a = simulate_switching_batch_simd(&lanes, &arc, &point, &config).unwrap();
        let b = simulate_switching_batch_simd(&lanes, &arc, &point, &config).unwrap();
        for (x, y) in a.iter().zip(&b) {
            let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
            assert_eq!(x.delay.value().to_bits(), y.delay.value().to_bits());
            assert_eq!(
                x.output_slew.value().to_bits(),
                y.output_slew.value().to_bits()
            );
        }
    }
}

#[test]
fn simd_disabled_engine_is_bitwise_identical_to_the_scalar_engine() {
    let tech = TechnologyNode::n14_finfet();
    let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Rise);
    let mut rng = StdRng::seed_from_u64(11);
    let seeds = tech.variation().sample_n(&mut rng, 9);
    let point = InputPoint::new(
        Seconds::from_picoseconds(5.0),
        Farads::from_femtofarads(2.0),
        Volts(0.8),
    );
    let scalar_engine =
        CharacterizationEngine::with_config(tech.clone(), TransientConfig::fast()).unwrap();
    let simd_off_engine = CharacterizationEngine::with_config(tech, TransientConfig::fast())
        .unwrap()
        .with_backend(Arc::new(LocalBackend::with_simd(false)));
    let a = scalar_engine.monte_carlo(cell, &arc, &point, &seeds);
    let b = simd_off_engine.monte_carlo(cell, &arc, &point, &seeds);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.delay.value().to_bits(),
            y.delay.value().to_bits(),
            "simd = false must not perturb a single bit"
        );
        assert_eq!(
            x.output_slew.value().to_bits(),
            y.output_slew.value().to_bits()
        );
    }
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random input conditions and process seeds: every SIMD lane within the accuracy
    /// envelope of its scalar simulation, at whichever preset.
    #[test]
    fn simd_lane_tracks_scalar_within_envelope(
        sin_ps in 0.5f64..30.0,
        cload_ff in 0.2f64..8.0,
        vdd in 0.6f64..1.1,
        seed in 0u64..1000,
        fast in 0u32..2,
    ) {
        let tech = TechnologyNode::n14_finfet();
        let cell = Cell::new(CellKind::Nor2, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let mut rng = StdRng::seed_from_u64(seed);
        let seeds = tech.variation().sample_n(&mut rng, 4);
        let lanes: Vec<EquivalentInverter> = seeds
            .iter()
            .map(|s| EquivalentInverter::build(&tech, cell, s))
            .collect();
        let config = if fast == 1 { TransientConfig::fast() } else { TransientConfig::accurate() };
        let point = InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(cload_ff),
            Volts(vdd),
        );
        let batch = simulate_switching_batch_simd(&lanes, &arc, &point, &config).unwrap();
        for (eq, lane) in lanes.iter().zip(batch) {
            let simd = lane.unwrap();
            let scalar = simulate_switching(eq, &arc, &point, &config).unwrap();
            prop_assert!(
                relative_err(simd.delay.value(), scalar.delay.value()) < SIMD_TOLERANCE
            );
            prop_assert!(
                relative_err(simd.output_slew.value(), scalar.output_slew.value())
                    < SIMD_TOLERANCE
            );
        }
    }
}
