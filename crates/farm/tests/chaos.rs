//! Chaos suite: every fault a [`FaultPlan`] can script, exercised end-to-end against a
//! real broker, with the one invariant that matters asserted every time — results are
//! **bitwise identical** to a fault-free local run.  Faults may move lanes between
//! workers and the local fallback, cost retries and reconnects, but never change a bit.

use slic_cells::{Cell, CellKind, DriveStrength, TimingArc, Transition};
use slic_device::{ProcessSample, TechnologyNode};
use slic_farm::wire::encode_message;
use slic_farm::{
    serve_listener, FarmBackend, FarmTuning, FaultPlan, Hello, Message, ServeOutcome, WorkerOptions,
};
use slic_spice::{CharacterizationEngine, InputPoint, TransientConfig};
use slic_units::{Farads, Seconds, Volts};
use std::net::TcpListener;
use std::sync::Arc;
use std::thread::JoinHandle;

fn engine() -> CharacterizationEngine {
    CharacterizationEngine::with_config(TechnologyNode::n14_finfet(), TransientConfig::fast())
        .expect("fast preset validates")
}

fn inv_fall() -> (Cell, TimingArc) {
    let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
    (cell, TimingArc::new(cell, 0, Transition::Fall))
}

fn grid(n: usize) -> Vec<InputPoint> {
    (0..n)
        .map(|i| {
            InputPoint::new(
                Seconds::from_picoseconds(1.0 + 0.41 * i as f64),
                Farads::from_femtofarads(0.5 + 0.13 * i as f64),
                Volts(0.7 + 0.004 * (i % 30) as f64),
            )
        })
        .collect()
}

/// A worker whose listener survives fault drops, on an ephemeral port.
fn spawn_faulty_worker(name: &str, fault: FaultPlan) -> (String, JoinHandle<ServeOutcome>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let address = listener.local_addr().expect("bound address").to_string();
    let options = WorkerOptions {
        name: name.to_string(),
        max_batches: None,
        fault: Some(fault),
        ..WorkerOptions::default()
    };
    let handle =
        std::thread::spawn(move || serve_listener(&listener, &options).expect("serve loop io"));
    (address, handle)
}

/// Millisecond-scale backoff: chaos tests pay real re-dial schedules, just tiny ones.
fn chaos_tuning() -> FarmTuning {
    FarmTuning {
        reconnect_attempts: 4,
        backoff_base_ms: 1,
        backoff_cap_ms: 4,
        ..FarmTuning::default()
    }
}

#[test]
fn a_flapping_worker_is_readmitted_with_backoff_and_results_stay_bitwise() {
    // The ISSUE acceptance scenario: a TCP worker that dies mid-run and comes back on the
    // same address.  The fault plan drops the connection after four messages and refuses
    // the first re-dial of every campaign, so re-admission must survive at least one
    // failed backoff attempt before the fresh hello handshake.
    let (address, _handle) = spawn_faulty_worker(
        "flappy",
        FaultPlan {
            seed: 7,
            drop_after_messages: Some(4),
            refuse_reconnects: 1,
            ..FaultPlan::default()
        },
    );
    let tuning = FarmTuning {
        // A generous budget: jobs wait for re-admission instead of degrading locally.
        retry_budget: Some(64),
        ..chaos_tuning()
    };
    let farm = Arc::new(FarmBackend::with_tuning(&[address], 0, None, tuning).expect("connects"));
    let farmed = engine().with_backend(farm.clone());
    let local = engine();
    let (cell, arc) = inv_fall();
    let points = grid(96);

    let remote = farmed.sweep_batch(cell, &arc, &points, &ProcessSample::nominal());
    let reference = local.sweep_batch(cell, &arc, &points, &ProcessSample::nominal());
    assert_eq!(remote, reference, "a flapping worker must not change a bit");

    let stats = farm.stats();
    assert!(
        stats.failovers >= 1,
        "the drop failed at least one job over"
    );
    assert!(
        stats.reconnects >= 1,
        "the flapping worker was re-admitted after a backoff campaign"
    );
    assert_eq!(
        stats.lanes_remote, 96,
        "the re-admitted worker served every lane; nothing degraded locally"
    );
    assert_eq!(stats.lanes_local, 0);
    assert_eq!(farm.live_workers(), 1, "the fleet ends the run healthy");
    // The worker thread is left parked in `accept` on purpose: whether the farm's
    // shutdown lands before or after a scripted drop is timing the fault plan owns, and
    // the test must not depend on it.
}

#[test]
fn a_half_open_peer_is_caught_by_the_heartbeat_not_the_batch_deadline() {
    // A "zombie" peer: completes a valid handshake, then swallows every message without
    // ever answering — the classic half-open connection (host paused, NAT state gone).
    // Without heartbeats the first dispatch would stall into the 60 s batch deadline;
    // with them the broker drops the peer after one short ping round trip.
    let zombie_listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let zombie_address = zombie_listener
        .local_addr()
        .expect("bound address")
        .to_string();
    let zombie = std::thread::spawn(move || {
        use std::io::{BufRead, BufReader, Write};
        let (mut stream, _) = zombie_listener.accept().expect("accept");
        // One connection only: once the broker gives up on us, re-dials get refused.
        drop(zombie_listener);
        writeln!(
            stream,
            "{}",
            encode_message(&Message::Hello(Hello::current("zombie")))
        )
        .expect("write hello");
        // Swallow everything (the heartbeat ping included) until the broker hangs up.
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        while reader.read_line(&mut line).is_ok_and(|read| read > 0) {
            line.clear();
        }
    });
    let (healthy_address, healthy) = spawn_faulty_worker("healthy", FaultPlan::default());
    let tuning = FarmTuning {
        heartbeat_timeout_ms: 250,
        reconnect_attempts: 2,
        ..chaos_tuning()
    };
    let farm = Arc::new(
        FarmBackend::with_tuning(&[zombie_address, healthy_address], 0, None, tuning)
            .expect("both handshakes pass — the zombie looks healthy at connect time"),
    );
    let farmed = engine().with_backend(farm.clone());
    let local = engine();
    let (cell, arc) = inv_fall();
    let points = grid(24);

    let remote = farmed.sweep_batch(cell, &arc, &points, &ProcessSample::nominal());
    let reference = local.sweep_batch(cell, &arc, &points, &ProcessSample::nominal());
    assert_eq!(remote, reference, "a half-open peer must not change a bit");

    let stats = farm.stats();
    assert!(
        stats.heartbeats_missed >= 1,
        "the zombie was caught by a ping, not a 60 s stall"
    );
    assert_eq!(stats.lanes_remote, 24, "the healthy worker took every lane");
    assert_eq!(stats.lanes_local, 0);
    assert_eq!(farm.live_workers(), 1, "only the zombie was retired");

    drop(farmed);
    drop(farm);
    zombie.join().expect("zombie thread");
    assert_eq!(
        healthy.join().expect("healthy worker"),
        ServeOutcome::Shutdown
    );
}

#[test]
fn exhausting_the_retry_budget_degrades_jobs_to_the_local_fallback() {
    // Every reply from this worker is scripted garbage, so every dispatch attempt fails;
    // with a budget of one attempt per job, every job must walk the full degradation
    // ladder down to the broker's in-process fallback — and still finish bit-exact.
    let (address, handle) = spawn_faulty_worker(
        "garbler",
        FaultPlan {
            garbage_every: Some(1),
            ..FaultPlan::default()
        },
    );
    let tuning = FarmTuning {
        retry_budget: Some(1),
        ..chaos_tuning()
    };
    let farm = Arc::new(FarmBackend::with_tuning(&[address], 0, None, tuning).expect("connects"));
    let farmed = engine().with_backend(farm.clone());
    let local = engine();
    let (cell, arc) = inv_fall();
    let points = grid(24);

    let remote = farmed.sweep_batch(cell, &arc, &points, &ProcessSample::nominal());
    let reference = local.sweep_batch(cell, &arc, &points, &ProcessSample::nominal());
    assert_eq!(remote, reference, "garbage replies must not change a bit");

    let stats = farm.stats();
    assert!(stats.degraded_jobs >= 1, "the budget was exhausted");
    assert!(stats.failovers >= 1, "each garbage reply burned an attempt");
    assert_eq!(stats.lanes_local, 24, "the fallback solved everything");
    assert_eq!(stats.lanes_remote, 0, "no garbage lane was ever accepted");

    drop(farmed);
    drop(farm);
    assert_eq!(handle.join().expect("worker"), ServeOutcome::Shutdown);
}
