//! Sweep-grid helpers used by every characterization grid in the workspace.
//!
//! Library characterization is built on sweeps: supply voltage sweeps for Fig. 2, load /
//! slew grids for the LUT baseline, training-sample-count sweeps for Figs. 6–8.  These
//! helpers generate the underlying 1-D point sets.

/// Returns `n` points linearly spaced over `[start, stop]`, inclusive of both ends.
///
/// Returns an empty vector for `n == 0` and `[start]` for `n == 1`.
///
/// # Examples
///
/// ```
/// let v = slic_units::range::linspace(0.0, 1.0, 5);
/// assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    match n {
        0 => Vec::new(),
        1 => vec![start],
        _ => {
            let step = (stop - start) / (n - 1) as f64;
            (0..n).map(|i| start + step * i as f64).collect()
        }
    }
}

/// Returns `n` points spaced logarithmically over `[start, stop]`, inclusive of both ends.
///
/// Standard cell LUT axes for load and slew are conventionally log-spaced because delay
/// sensitivity is highest at small loads.
///
/// # Panics
///
/// Panics if `start <= 0`, `stop <= 0`, or either bound is not finite.
///
/// # Examples
///
/// ```
/// let v = slic_units::range::logspace(1.0, 100.0, 3);
/// assert!((v[1] - 10.0).abs() < 1e-9);
/// ```
pub fn logspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(
        start > 0.0 && stop > 0.0 && start.is_finite() && stop.is_finite(),
        "logspace bounds must be positive and finite (got {start}, {stop})"
    );
    linspace(start.ln(), stop.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

/// Returns `n` points forming a geometric progression from `start` to `stop`.
///
/// Alias of [`logspace`] kept for readability at call sites that think in terms of
/// geometric ratios (e.g. doubling load capacitance per LUT column).
///
/// # Panics
///
/// Panics under the same conditions as [`logspace`].
pub fn geomspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    logspace(start, stop, n)
}

/// Returns the midpoints of each consecutive pair in `points`.
///
/// Useful for building validation points that deliberately avoid the training grid.
///
/// # Examples
///
/// ```
/// let mids = slic_units::range::midpoints(&[0.0, 1.0, 3.0]);
/// assert_eq!(mids, vec![0.5, 2.0]);
/// ```
pub fn midpoints(points: &[f64]) -> Vec<f64> {
    points.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect()
}

/// Linearly rescales `x` from `[from_lo, from_hi]` into `[to_lo, to_hi]`.
///
/// Used to map unit-cube sampling plans (Latin hypercube, uniform random) onto physical
/// input ranges.
///
/// # Examples
///
/// ```
/// let y = slic_units::range::rescale(0.5, 0.0, 1.0, 0.65, 1.0);
/// assert!((y - 0.825).abs() < 1e-12);
/// ```
pub fn rescale(x: f64, from_lo: f64, from_hi: f64, to_lo: f64, to_hi: f64) -> f64 {
    if from_hi == from_lo {
        return to_lo;
    }
    to_lo + (x - from_lo) / (from_hi - from_lo) * (to_hi - to_lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_count() {
        let v = linspace(0.65, 1.0, 8);
        assert_eq!(v.len(), 8);
        assert!((v[0] - 0.65).abs() < 1e-12);
        assert!((v[7] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linspace_degenerate_counts() {
        assert!(linspace(0.0, 1.0, 0).is_empty());
        assert_eq!(linspace(0.3, 1.0, 1), vec![0.3]);
        assert_eq!(linspace(1.0, 0.0, 2), vec![1.0, 0.0]);
    }

    #[test]
    fn linspace_is_monotone_when_ascending() {
        let v = linspace(-2.0, 5.0, 23);
        assert!(v.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn logspace_endpoints_and_ratio() {
        let v = logspace(1e-16, 1e-14, 3);
        assert!((v[0] - 1e-16).abs() / 1e-16 < 1e-9);
        assert!((v[2] - 1e-14).abs() / 1e-14 < 1e-9);
        let r1 = v[1] / v[0];
        let r2 = v[2] / v[1];
        assert!(
            (r1 - r2).abs() / r1 < 1e-9,
            "geometric ratio should be constant"
        );
    }

    #[test]
    #[should_panic(expected = "logspace bounds must be positive")]
    fn logspace_rejects_nonpositive_bounds() {
        let _ = logspace(0.0, 1.0, 4);
    }

    #[test]
    fn geomspace_matches_logspace() {
        assert_eq!(geomspace(1.0, 8.0, 4), logspace(1.0, 8.0, 4));
    }

    #[test]
    fn midpoints_of_grid() {
        let mids = midpoints(&linspace(0.0, 1.0, 3));
        assert_eq!(mids, vec![0.25, 0.75]);
        assert!(midpoints(&[1.0]).is_empty());
        assert!(midpoints(&[]).is_empty());
    }

    #[test]
    fn rescale_maps_unit_interval() {
        assert!((rescale(0.0, 0.0, 1.0, 0.65, 1.0) - 0.65).abs() < 1e-12);
        assert!((rescale(1.0, 0.0, 1.0, 0.65, 1.0) - 1.0).abs() < 1e-12);
        // Degenerate source interval falls back to the lower target bound.
        assert_eq!(rescale(0.3, 0.5, 0.5, 2.0, 3.0), 2.0);
    }
}
