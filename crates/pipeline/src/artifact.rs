//! Run artifacts: the persistent, reloadable record of a characterization run.

use crate::error::PipelineError;
use crate::plan::{unit_identity, UnitKind};
use serde::{Deserialize, Serialize};
use slic::liberty::{export_fitted_library_with_variation, ArcVariation, ExportGrid, FittedArc};
use slic::nominal::MethodKind;
use slic::report::markdown_table;
use slic_bayes::TimingMetric;
use slic_cells::{TimingArc, Transition};
use slic_spice::CharacterizationEngine;
use slic_timing_model::TimingParams;
use slic_variation::VariationTable;
use std::path::Path;

/// The outcome of one executed [`WorkUnit`](crate::plan::WorkUnit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitResult {
    /// Arc identifier, e.g. `"NAND2_X1/A0/FALL"`.
    pub arc_id: String,
    /// The arc itself (reconstructable for export).
    pub arc: TimingArc,
    /// The characterized metric.
    pub metric: TimingMetric,
    /// The extraction method (a placeholder for Monte Carlo units).
    pub method: MethodKind,
    /// Nominal extraction or Monte Carlo variation (absent in pre-variation artifacts,
    /// which were nominal-only).
    pub kind: UnitKind,
    /// The extracted compact-model parameters (absent for the LUT method and for Monte
    /// Carlo units, whose output is a [`VariationTable`] in the artifact's variation
    /// section).
    pub params: Option<TimingParams>,
    /// Training conditions requested (zero for Monte Carlo units).
    pub training_count: usize,
    /// Validation conditions requested (zero for Monte Carlo units).
    pub validation_points: usize,
    /// For nominal units: mean absolute relative error against direct simulation at the
    /// validation conditions, in percent.  For Monte Carlo units: the mean coefficient of
    /// variation `σ/µ` over the grid, in percent (a spread, not an error).
    pub error_percent: f64,
    /// Transient simulations this unit *requested* (training + validation, or
    /// grid × seeds for Monte Carlo units).  The shared engine may have answered some
    /// from the cache; the run-level [`RunArtifact::total_simulations`] counts what was
    /// actually paid for.
    pub requested_simulations: u64,
}

impl UnitResult {
    /// The stable identity of the work unit this result came from — the merge key used to
    /// detect overlapping shards and to order merged artifacts deterministically.
    pub fn unit_id(&self) -> String {
        unit_identity(&self.arc_id, self.metric, self.method, self.kind)
    }
}

/// The per-arc fitted models distilled from the unit results — the consumable "library"
/// output of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizedArc {
    /// The timing arc.
    pub arc: TimingArc,
    /// Delay compact-model parameters.
    pub delay: TimingParams,
    /// Output-slew compact-model parameters.
    pub slew: TimingParams,
    /// Validation error of the delay fit, percent.
    pub delay_error_percent: f64,
    /// Validation error of the slew fit, percent.
    pub slew_error_percent: f64,
}

/// A characterized library: every arc that obtained both metric fits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizedLibrary {
    /// Library name.
    pub library: String,
    /// Target technology name.
    pub technology: String,
    /// The fitted arcs.
    pub arcs: Vec<CharacterizedArc>,
}

impl CharacterizedLibrary {
    /// Assembles the library from unit results, pairing each arc's delay and slew fits.
    ///
    /// When several methods produced parameters for the same (arc, metric), the Bayesian
    /// fit wins; an arc missing either metric is skipped (it cannot fill a Liberty timing
    /// group).
    pub fn from_units(library: &str, technology: &str, units: &[UnitResult]) -> Self {
        let pick = |arc: &TimingArc, metric: TimingMetric| -> Option<(TimingParams, f64)> {
            units
                .iter()
                .filter(|u| u.arc == *arc && u.metric == metric && u.params.is_some())
                .min_by_key(|u| match u.method {
                    MethodKind::ProposedBayesian => 0,
                    MethodKind::ProposedLse => 1,
                    MethodKind::Lut => 2,
                })
                // slic-lint: allow(P1) -- structural: the iterator is filtered on params.is_some() two lines up.
                .map(|u| (u.params.expect("filtered on is_some"), u.error_percent))
        };
        let mut arcs = Vec::new();
        let mut seen = Vec::new();
        for unit in units {
            if seen.contains(&unit.arc) {
                continue;
            }
            seen.push(unit.arc);
            let (Some((delay, delay_err)), Some((slew, slew_err))) = (
                pick(&unit.arc, TimingMetric::Delay),
                pick(&unit.arc, TimingMetric::OutputSlew),
            ) else {
                continue;
            };
            arcs.push(CharacterizedArc {
                arc: unit.arc,
                delay,
                slew,
                delay_error_percent: delay_err,
                slew_error_percent: slew_err,
            });
        }
        Self {
            library: library.to_string(),
            technology: technology.to_string(),
            arcs,
        }
    }

    /// The arcs as liberty-export inputs.
    pub fn fitted_arcs(&self) -> Vec<FittedArc> {
        self.arcs
            .iter()
            .map(|a| FittedArc {
                arc: a.arc,
                delay: a.delay,
                slew: a.slew,
            })
            .collect()
    }

    /// Renders the Liberty text of the characterized arcs (zero transient simulations;
    /// see [`slic::liberty::export_fitted_library`]).
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Export`] when no arc was fully characterized or the
    /// grid is degenerate.
    pub fn to_liberty(
        &self,
        engine: &CharacterizationEngine,
        grid: ExportGrid,
    ) -> Result<String, PipelineError> {
        Ok(export_fitted_library_with_variation(
            engine,
            &self.library,
            &self.fitted_arcs(),
            &[],
            grid,
        )?)
    }

    /// [`to_liberty`](Self::to_liberty) with LVF-style `ocv_sigma_*`/`ocv_skewness_*`
    /// groups rendered from a run's [`VariationSection`] next to each nominal table.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Export`] when no arc was fully characterized, the grid
    /// is degenerate, or a variation table does not match the grid shape.
    pub fn to_liberty_with_variation(
        &self,
        engine: &CharacterizationEngine,
        grid: ExportGrid,
        variation: &VariationSection,
    ) -> Result<String, PipelineError> {
        Ok(export_fitted_library_with_variation(
            engine,
            &self.library,
            &self.fitted_arcs(),
            &variation.arc_variations(),
            grid,
        )?)
    }

    /// Returns `true` when an arc of the given cell name and transition is present.
    pub fn covers(&self, cell_name: &str, transition: Transition) -> bool {
        self.arcs
            .iter()
            .any(|a| a.arc.cell().name() == cell_name && a.arc.output_transition() == transition)
    }
}

/// The Monte Carlo variation record of a run: the configuration the seed set derives
/// from, plus one moment table per executed variation unit.
///
/// Shards of one variation run carry identical `(process_seeds, sigma_corners, seed)`
/// triples — that is the merge criterion; shards with mismatched seed configurations
/// describe different ensembles and must not merge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationSection {
    /// Monte Carlo process seeds per variation unit.
    pub process_seeds: usize,
    /// Sigma multipliers for corner reporting.
    pub sigma_corners: Vec<f64>,
    /// RNG seed of the process-sample draw.
    pub seed: u64,
    /// Per-unit moment tables, in canonical [`VariationTable::table_id`] order.
    pub tables: Vec<VariationTable>,
}

impl VariationSection {
    /// Builds an [`ArcVariation`] per arc that has **both** metric tables — the
    /// liberty-export input.  Arcs with only one metric characterized are skipped (an
    /// LVF timing group needs sigma/skew for delay and transition alike).
    pub fn arc_variations(&self) -> Vec<ArcVariation> {
        let mut out = Vec::new();
        let mut seen: Vec<TimingArc> = Vec::new();
        for table in &self.tables {
            if seen.contains(&table.arc) {
                continue;
            }
            seen.push(table.arc);
            let find = |metric: TimingMetric| {
                self.tables
                    .iter()
                    .find(|t| t.arc == table.arc && t.metric == metric)
            };
            let (Some(delay), Some(slew)) =
                (find(TimingMetric::Delay), find(TimingMetric::OutputSlew))
            else {
                continue;
            };
            out.push(ArcVariation {
                arc: table.arc,
                delay_sigma: delay.sigma.clone(),
                delay_skew: delay.skewness_time_rows(),
                slew_sigma: slew.sigma.clone(),
                slew_skew: slew.skewness_time_rows(),
            });
        }
        out
    }
}

/// The transient-kernel record of a run: what the hot path cost and how batched lanes
/// were dispatched.  Recorded only when the run opted into the SIMD kernel
/// (`kernel.simd = true`), and omitted — not `null` — from the JSON otherwise, so default
/// runs stay byte-identical to artifacts written before this section existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelSection {
    /// Whether the SIMD quad kernel produced these numbers.
    pub simd: bool,
    /// Completed transient simulations the kernel integrated.
    pub sims: u64,
    /// Accepted integration steps.
    pub steps: u64,
    /// Step attempts rejected by the embedded error estimate.
    pub rejected_steps: u64,
    /// Transistor-model evaluations.
    pub device_evals: u64,
    /// SIMD quad step attempts (zero for the scalar kernel).
    pub quad_rounds: u64,
    /// Real lanes advanced by those quad attempts.
    pub active_lane_rounds: u64,
    /// Lanes submitted through batched dispatch.
    pub lanes_dispatched: u64,
    /// Lanes answered from the simulation cache without solving.
    pub lanes_cached: u64,
    /// Lanes claimed and solved in batched worklists.
    pub lanes_claimed: u64,
    /// Lanes deferred to the scalar path because their coordinate was in flight on
    /// another worker.
    pub lanes_deferred: u64,
}

impl KernelSection {
    /// Accepted steps per completed simulation.
    pub fn steps_per_sim(&self) -> f64 {
        if self.sims == 0 {
            0.0
        } else {
            self.steps as f64 / self.sims as f64
        }
    }

    /// Transistor-model evaluations per completed simulation.
    pub fn device_evals_per_sim(&self) -> f64 {
        if self.sims == 0 {
            0.0
        } else {
            self.device_evals as f64 / self.sims as f64
        }
    }

    /// Fraction of SIMD quad slots occupied by real lanes, when the SIMD kernel ran.
    pub fn quad_occupancy(&self) -> Option<f64> {
        if self.quad_rounds == 0 {
            None
        } else {
            Some(self.active_lane_rounds as f64 / (4 * self.quad_rounds) as f64)
        }
    }

    /// Field-wise sum for shard merging (`simd` is OR-ed: any shard that ran the SIMD
    /// kernel makes the merged run a SIMD run).
    fn add(self, other: KernelSection) -> KernelSection {
        KernelSection {
            simd: self.simd || other.simd,
            sims: self.sims + other.sims,
            steps: self.steps + other.steps,
            rejected_steps: self.rejected_steps + other.rejected_steps,
            device_evals: self.device_evals + other.device_evals,
            quad_rounds: self.quad_rounds + other.quad_rounds,
            active_lane_rounds: self.active_lane_rounds + other.active_lane_rounds,
            lanes_dispatched: self.lanes_dispatched + other.lanes_dispatched,
            lanes_cached: self.lanes_cached + other.lanes_cached,
            lanes_claimed: self.lanes_claimed + other.lanes_claimed,
            lanes_deferred: self.lanes_deferred + other.lanes_deferred,
        }
    }
}

/// The farm resilience record of a run: fleet health and the degradation-ladder
/// counters ([`slic_farm::FarmStats`] plus fleet shape, carried across the crate
/// boundary as plain fields).
///
/// This section is **display-only**: it feeds the dispatch summary and
/// [`RunArtifact::summary_markdown`], and is *never* serialized into the artifact JSON —
/// a farm run's artifact must stay byte-identical to a local run's, and how many retries
/// the transport needed is operational telemetry, not a property of the characterized
/// library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FarmSection {
    /// Total workers the fleet was built with.
    pub fleet_size: usize,
    /// Workers still holding a live connection after the run.
    pub workers_live: usize,
    /// Jobs answered by a worker.
    pub jobs_completed: u64,
    /// Dispatch attempts that failed and sent their job back for another try.
    pub failovers: u64,
    /// Dead workers re-admitted after a backoff re-dial and fresh handshake.
    pub reconnects: u64,
    /// Heartbeat probes that went unanswered, each dropping a half-open connection.
    pub heartbeats_missed: u64,
    /// Jobs that exhausted their retry budget and degraded to the local fallback.
    pub degraded_jobs: u64,
    /// Lanes solved on a worker.
    pub lanes_remote: u64,
    /// Lanes solved by the broker's in-process fallback.
    pub lanes_local: u64,
}

/// The complete, persistent record of one characterization run.
///
/// `Serialize` is written by hand (everything else in this file derives it) for two
/// reasons: the derived impl emits `"kernel": null` when the section is absent, and the
/// `kernel` key must be *omitted* instead so that default (`kernel.simd = false`) runs
/// produce artifacts byte-identical to those written before the section existed; and the
/// `farm` section must never be written at all — farm and local artifacts are required
/// to be byte-identical, so transport telemetry cannot enter the JSON.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct RunArtifact {
    /// Artifact format version (bumped on breaking layout changes).
    pub schema_version: u32,
    /// Library name.
    pub library: String,
    /// Target technology name.
    pub technology: String,
    /// Profile name the run used.
    pub profile: String,
    /// RNG seed the run used.
    pub seed: u64,
    /// Number of units the *full* run plans.  A shard artifact reports the whole plan's
    /// size (its own unit count is `units.len()`), so a merge can detect missing shards.
    pub planned_units: usize,
    /// Per-unit outcomes.
    pub units: Vec<UnitResult>,
    /// The distilled library.
    pub characterized: CharacterizedLibrary,
    /// Transient simulations actually executed across every stage sharing the run's
    /// counter (learning + characterization), i.e. the shared `SimulationCounter` total.
    pub total_simulations: u64,
    /// Simulation-cache hits across the run.
    pub cache_hits: u64,
    /// Simulation-cache misses across the run.
    pub cache_misses: u64,
    /// Monte Carlo variation record, present exactly when the run was configured with
    /// variation (absent in nominal-only and pre-variation artifacts).
    pub variation: Option<VariationSection>,
    /// Transient-kernel cost and dispatch record, present exactly when the run opted
    /// into the SIMD kernel (absent in default-kernel and pre-SIMD artifacts).
    pub kernel: Option<KernelSection>,
    /// Farm resilience record, attached in memory after a farm run for reporting.
    /// Never serialized (and therefore never reloaded): the artifact JSON of a farm run
    /// is byte-identical to a local run's.
    pub farm: Option<FarmSection>,
}

/// Current artifact schema version.
pub const SCHEMA_VERSION: u32 = 1;

impl serde::Serialize for RunArtifact {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("schema_version".to_string(), self.schema_version.to_value()),
            ("library".to_string(), self.library.to_value()),
            ("technology".to_string(), self.technology.to_value()),
            ("profile".to_string(), self.profile.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("planned_units".to_string(), self.planned_units.to_value()),
            ("units".to_string(), self.units.to_value()),
            ("characterized".to_string(), self.characterized.to_value()),
            (
                "total_simulations".to_string(),
                self.total_simulations.to_value(),
            ),
            ("cache_hits".to_string(), self.cache_hits.to_value()),
            ("cache_misses".to_string(), self.cache_misses.to_value()),
            ("variation".to_string(), self.variation.to_value()),
        ];
        if let Some(kernel) = &self.kernel {
            entries.push(("kernel".to_string(), kernel.to_value()));
        }
        // `self.farm` is deliberately not written: see the struct docs.
        serde::Value::Object(entries)
    }
}

impl RunArtifact {
    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (non-finite numbers — not produced by a valid run).
    pub fn to_json(&self) -> Result<String, PipelineError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses an artifact from JSON, checking the schema version.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] on malformed JSON or a schema-version mismatch.
    pub fn from_json(text: &str) -> Result<Self, PipelineError> {
        let artifact: Self = serde_json::from_str(text)?;
        if artifact.schema_version != SCHEMA_VERSION {
            return Err(PipelineError::config(format!(
                "run artifact schema version {} is not supported (expected {SCHEMA_VERSION})",
                artifact.schema_version
            )));
        }
        Ok(artifact)
    }

    /// Writes the artifact as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates serialization and filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PipelineError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Reloads an artifact from a JSON file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and parse errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PipelineError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }

    /// Joins the artifacts of disjoint plan shards into the artifact of the whole run.
    ///
    /// Counter totals and cache statistics are summed; unit results are concatenated and
    /// re-ordered by their stable unit identity, so the merged artifact is independent of
    /// shard order and the fitted [`CharacterizedLibrary`] is rebuilt from the full unit
    /// set.  When the shards executed sequentially against one shared (disk-backed)
    /// simulation cache, the merged totals equal a single-process run of the unsharded
    /// plan: each unique coordinate was paid for exactly once somewhere.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Config`] when no artifacts are given, when two shards
    /// disagree on library/technology/profile/seed/planned-unit-count
    /// (differently-configured shards cannot describe one run), when two shards contain
    /// the same work unit (overlap means the split was not disjoint), or when the merged
    /// units do not cover the full plan (a shard artifact is missing — silently exporting
    /// an incomplete library would be worse than failing).
    pub fn merge(shards: &[RunArtifact]) -> Result<RunArtifact, PipelineError> {
        let first = shards
            .first()
            .ok_or_else(|| PipelineError::config("cannot merge zero run artifacts"))?;
        for (index, shard) in shards.iter().enumerate().skip(1) {
            let mismatch = |field: &str, a: &str, b: &str| {
                PipelineError::config(format!(
                    "cannot merge differently-configured shards: artifact {index} has \
                     {field} `{b}` but artifact 0 has `{a}`"
                ))
            };
            if shard.library != first.library {
                return Err(mismatch("library", &first.library, &shard.library));
            }
            if shard.technology != first.technology {
                return Err(mismatch("technology", &first.technology, &shard.technology));
            }
            if shard.profile != first.profile {
                return Err(mismatch("profile", &first.profile, &shard.profile));
            }
            if shard.seed != first.seed {
                return Err(mismatch(
                    "seed",
                    &first.seed.to_string(),
                    &shard.seed.to_string(),
                ));
            }
            if shard.planned_units != first.planned_units {
                return Err(mismatch(
                    "planned-unit count",
                    &first.planned_units.to_string(),
                    &shard.planned_units.to_string(),
                ));
            }
        }
        let mut units: Vec<UnitResult> = shards.iter().flat_map(|s| s.units.clone()).collect();
        units.sort_by_cached_key(UnitResult::unit_id);
        let ids: Vec<String> = units.iter().map(UnitResult::unit_id).collect();
        if let Some(pair) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(PipelineError::config(format!(
                "cannot merge overlapping shards: unit `{}` appears more than once",
                pair[0]
            )));
        }
        if units.len() != first.planned_units {
            return Err(PipelineError::config(format!(
                "incomplete merge: the shards cover {} of {} planned units — a shard \
                 artifact is missing",
                units.len(),
                first.planned_units
            )));
        }
        let variation = Self::merge_variation(shards)?;
        // Kernel sections are cost accounting (like the cache totals), not ensemble
        // identity: shards that ran without the SIMD kernel simply contribute nothing.
        let kernel = shards
            .iter()
            .filter_map(|s| s.kernel)
            .reduce(KernelSection::add);
        let characterized =
            CharacterizedLibrary::from_units(&first.library, &first.technology, &units);
        Ok(RunArtifact {
            schema_version: SCHEMA_VERSION,
            library: first.library.clone(),
            technology: first.technology.clone(),
            profile: first.profile.clone(),
            seed: first.seed,
            planned_units: first.planned_units,
            units,
            characterized,
            total_simulations: shards.iter().map(|s| s.total_simulations).sum(),
            cache_hits: shards.iter().map(|s| s.cache_hits).sum(),
            cache_misses: shards.iter().map(|s| s.cache_misses).sum(),
            variation,
            kernel,
            // Transport telemetry never round-trips through shard files, so there is
            // nothing truthful to merge.
            farm: None,
        })
    }

    /// Joins the variation sections of the shards: every shard of a variation run must
    /// carry one, with the identical seed configuration — the tables of shards drawn from
    /// different process-sample sets would describe different ensembles and must never be
    /// mixed into one artifact.
    fn merge_variation(shards: &[RunArtifact]) -> Result<Option<VariationSection>, PipelineError> {
        let Some(reference) = &shards[0].variation else {
            if let Some(index) = shards.iter().position(|s| s.variation.is_some()) {
                return Err(PipelineError::config(format!(
                    "cannot merge mismatched variation sections: artifact {index} records \
                     a Monte Carlo variation run but artifact 0 does not; shards of one \
                     run share one variation configuration"
                )));
            }
            return Ok(None);
        };
        let mut tables: Vec<VariationTable> = Vec::new();
        for (index, shard) in shards.iter().enumerate() {
            let Some(section) = &shard.variation else {
                return Err(PipelineError::config(format!(
                    "cannot merge mismatched variation sections: artifact {index} has no \
                     variation section but artifact 0 does; shards of one run share one \
                     variation configuration"
                )));
            };
            let mismatch = |field: &str, a: String, b: String| {
                PipelineError::config(format!(
                    "cannot merge variation shards of different ensembles: artifact \
                     {index} has {field} {b} but artifact 0 has {a}"
                ))
            };
            if section.process_seeds != reference.process_seeds {
                return Err(mismatch(
                    "process-seed count",
                    reference.process_seeds.to_string(),
                    section.process_seeds.to_string(),
                ));
            }
            if section.sigma_corners != reference.sigma_corners {
                return Err(mismatch(
                    "sigma corners",
                    format!("{:?}", reference.sigma_corners),
                    format!("{:?}", section.sigma_corners),
                ));
            }
            if section.seed != reference.seed {
                return Err(mismatch(
                    "variation seed",
                    reference.seed.to_string(),
                    section.seed.to_string(),
                ));
            }
            tables.extend(section.tables.iter().cloned());
        }
        tables.sort_by_cached_key(VariationTable::table_id);
        if let Some(pair) = tables
            .windows(2)
            .find(|w| w[0].table_id() == w[1].table_id())
        {
            return Err(PipelineError::config(format!(
                "cannot merge overlapping shards: variation table `{}` appears more than \
                 once",
                pair[0].table_id()
            )));
        }
        Ok(Some(VariationSection {
            process_seeds: reference.process_seeds,
            sigma_corners: reference.sigma_corners.clone(),
            seed: reference.seed,
            tables,
        }))
    }

    /// Returns `true` when this artifact covers only part of its plan — i.e. it is one
    /// shard of a split run, not the whole run.  Partial artifacts must not be exported
    /// (their library would silently be incomplete) and their cost totals describe the
    /// shard, not the run; every consumer besides `merge` either refuses them or labels
    /// its output accordingly.
    pub fn is_partial(&self) -> bool {
        self.units.len() < self.planned_units
    }

    /// A Markdown summary table of the run (one row per unit) with a cost footer; a
    /// statistical run additionally renders its sigma/skew tables.
    ///
    /// A shard artifact is labelled prominently as partial — the count covers nominal
    /// *and* variation units alike — so a report of one shard is never mistaken for the
    /// whole run.
    pub fn summary_markdown(&self) -> String {
        let headers = vec![
            "arc".to_string(),
            "metric".to_string(),
            "kind".to_string(),
            "method".to_string(),
            "error (%)".to_string(),
            "requested sims".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .units
            .iter()
            .map(|u| {
                vec![
                    u.arc_id.clone(),
                    u.metric.to_string(),
                    u.kind.to_string(),
                    match u.kind {
                        UnitKind::Nominal => u.method.to_string(),
                        UnitKind::MonteCarlo => "direct sampling".to_string(),
                    },
                    format!("{:.2}", u.error_percent),
                    u.requested_simulations.to_string(),
                ]
            })
            .collect();
        let mut out = format!(
            "# Characterization run: {} on {} ({} profile)\n\n",
            self.library, self.technology, self.profile
        );
        if self.is_partial() {
            out.push_str(&format!(
                "> **PARTIAL SHARD ARTIFACT** — covers {} of {} planned units. Simulation \
                 and cache totals below describe this shard only; join every shard with \
                 `slic merge` before exporting or quoting run-level results.\n\n",
                self.units.len(),
                self.planned_units,
            ));
        }
        out.push_str(&markdown_table(&headers, &rows));
        out.push_str(&format!(
            "\n{} units; {} arcs fully characterized; {} transient simulations paid, {} cache hits ({} misses).\n",
            self.units.len(),
            self.characterized.arcs.len(),
            self.total_simulations,
            self.cache_hits,
            self.cache_misses,
        ));
        if let Some(kernel) = &self.kernel {
            out.push_str(&Self::kernel_markdown(kernel));
        }
        if let Some(farm) = &self.farm {
            out.push_str(&Self::farm_markdown(farm));
        }
        if let Some(variation) = &self.variation {
            out.push_str(&self.variation_markdown(variation));
        }
        out
    }

    /// Renders the farm resilience record of a distributed run.
    fn farm_markdown(farm: &FarmSection) -> String {
        let mut out = format!(
            "\n## Simulation farm ({} of {} workers live after the run)\n\n",
            farm.workers_live, farm.fleet_size
        );
        out.push_str(&format!(
            "{} jobs completed remotely; {} lanes solved on workers, {} by the local \
             fallback.\n",
            farm.jobs_completed, farm.lanes_remote, farm.lanes_local,
        ));
        out.push_str(&format!(
            "Resilience: {} failovers, {} reconnects, {} heartbeats missed, {} jobs \
             degraded to local solving.\n",
            farm.failovers, farm.reconnects, farm.heartbeats_missed, farm.degraded_jobs,
        ));
        out
    }

    /// Renders the transient-kernel cost and dispatch record of a SIMD run.
    fn kernel_markdown(kernel: &KernelSection) -> String {
        let mut out = format!(
            "\n## Transient kernel ({})\n\n",
            if kernel.simd { "SIMD quads" } else { "scalar" }
        );
        out.push_str(&format!(
            "{} sims: {:.1} steps/sim, {:.1} device evals/sim, {} rejected steps",
            kernel.sims,
            kernel.steps_per_sim(),
            kernel.device_evals_per_sim(),
            kernel.rejected_steps,
        ));
        if let Some(occupancy) = kernel.quad_occupancy() {
            out.push_str(&format!(", {:.0}% quad occupancy", occupancy * 100.0));
        }
        out.push_str(".\n");
        out.push_str(&format!(
            "Batched dispatch: {} lanes ({} solved, {} cache hits, {} deferred to the \
             scalar path).\n",
            kernel.lanes_dispatched,
            kernel.lanes_claimed,
            kernel.lanes_cached,
            kernel.lanes_deferred,
        ));
        out
    }

    /// Renders the sigma/skew tables of a statistical run: a per-table corner summary,
    /// then the full per-grid-point moments.
    fn variation_markdown(&self, variation: &VariationSection) -> String {
        let mut out = format!(
            "\n## Process variation ({} seeds, draw seed {})\n\n",
            variation.process_seeds, variation.seed
        );
        if variation.tables.is_empty() {
            out.push_str(
                "No variation tables in this artifact (this shard owned no Monte Carlo \
                 units).\n",
            );
            return out;
        }
        // Corner summary: the worst mean + k·sigma view per table.
        let mut headers = vec![
            "arc".to_string(),
            "metric".to_string(),
            "max µ (ps)".to_string(),
            "max σ (ps)".to_string(),
        ];
        headers.extend(
            variation
                .sigma_corners
                .iter()
                .map(|k| format!("worst µ+{k}σ (ps)")),
        );
        let rows: Vec<Vec<String>> = variation
            .tables
            .iter()
            .map(|t| {
                let max_of = |rows: &[Vec<f64>]| {
                    rows.iter()
                        .flatten()
                        .fold(f64::NEG_INFINITY, |acc, v| acc.max(*v))
                };
                let mut row = vec![
                    t.arc_id.clone(),
                    t.metric.to_string(),
                    format!("{:.3}", max_of(&t.mean) * 1e12),
                    format!("{:.3}", max_of(&t.sigma) * 1e12),
                ];
                row.extend(
                    variation
                        .sigma_corners
                        .iter()
                        .map(|&k| format!("{:.3}", t.worst_corner(k) * 1e12)),
                );
                row
            })
            .collect();
        out.push_str(&markdown_table(&headers, &rows));
        // Full moment grids, one table per (arc, metric).
        for table in &variation.tables {
            out.push_str(&format!(
                "\n### {} {} — µ / σ / γ per slew × load point\n\n",
                table.arc_id, table.metric
            ));
            let mut headers = vec!["slew (ps) \\ load (fF)".to_string()];
            headers.extend(table.load_axis.iter().map(|c| format!("{:.3}", c * 1e15)));
            let rows: Vec<Vec<String>> = table
                .slew_axis
                .iter()
                .enumerate()
                .map(|(r, sin)| {
                    let mut row = vec![format!("{:.3}", sin * 1e12)];
                    row.extend((0..table.load_axis.len()).map(|c| {
                        format!(
                            "{:.3} / {:.3} / {:+.2}",
                            table.mean[r][c] * 1e12,
                            table.sigma[r][c] * 1e12,
                            table.skew[r][c],
                        )
                    }));
                    row
                })
                .collect();
            out.push_str(&markdown_table(&headers, &rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A structurally minimal artifact: zero planned units, so it also merges cleanly.
    fn empty_artifact(kernel: Option<KernelSection>) -> RunArtifact {
        RunArtifact {
            schema_version: SCHEMA_VERSION,
            library: "mini".to_string(),
            technology: "N7_FinFET".to_string(),
            profile: "quick".to_string(),
            seed: 42,
            planned_units: 0,
            units: Vec::new(),
            characterized: CharacterizedLibrary::from_units("mini", "N7_FinFET", &[]),
            total_simulations: 0,
            cache_hits: 0,
            cache_misses: 0,
            variation: None,
            kernel,
            farm: None,
        }
    }

    fn farm_section() -> FarmSection {
        FarmSection {
            fleet_size: 2,
            workers_live: 1,
            jobs_completed: 40,
            failovers: 3,
            reconnects: 2,
            heartbeats_missed: 1,
            degraded_jobs: 1,
            lanes_remote: 90,
            lanes_local: 6,
        }
    }

    fn simd_section() -> KernelSection {
        KernelSection {
            simd: true,
            sims: 100,
            steps: 5_000,
            rejected_steps: 40,
            device_evals: 60_000,
            quad_rounds: 1_500,
            active_lane_rounds: 5_100,
            lanes_dispatched: 100,
            lanes_cached: 10,
            lanes_claimed: 88,
            lanes_deferred: 2,
        }
    }

    #[test]
    fn a_default_run_artifact_has_no_kernel_key_at_all() {
        // The acceptance contract of the SIMD work: with `kernel.simd = false` (the
        // default) artifacts must stay byte-identical to pre-SIMD artifacts, which means
        // the key must be *absent*, not `"kernel": null`.
        let json = empty_artifact(None).to_json().expect("serializes");
        assert!(
            !json.contains("kernel"),
            "kernel key must be omitted:\n{json}"
        );
        let back = RunArtifact::from_json(&json).expect("parses");
        assert_eq!(back.kernel, None);
    }

    #[test]
    fn a_simd_run_artifact_round_trips_its_kernel_section() {
        let artifact = empty_artifact(Some(simd_section()));
        let json = artifact.to_json().expect("serializes");
        assert!(
            json.contains("\"kernel\""),
            "kernel section missing:\n{json}"
        );
        let back = RunArtifact::from_json(&json).expect("parses");
        assert_eq!(back, artifact);
        let kernel = back.kernel.expect("kernel present");
        assert_eq!(
            kernel.lanes_dispatched,
            kernel.lanes_cached + kernel.lanes_claimed + kernel.lanes_deferred,
            "every dispatched lane is accounted for exactly once"
        );
        assert!((kernel.quad_occupancy().unwrap() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn merging_shards_sums_kernel_sections_and_tolerates_their_absence() {
        let a = empty_artifact(Some(simd_section()));
        let b = empty_artifact(Some(simd_section()));
        let scalar = empty_artifact(None);

        let merged = RunArtifact::merge(&[a.clone(), b, scalar.clone()]).expect("merges");
        let kernel = merged.kernel.expect("kernel survives the merge");
        assert!(kernel.simd);
        assert_eq!(kernel.sims, 200);
        assert_eq!(kernel.device_evals, 120_000);
        assert_eq!(kernel.lanes_dispatched, 200);
        assert_eq!(kernel.lanes_deferred, 4);

        // All-scalar shards merge to an artifact without the section.
        let merged = RunArtifact::merge(&[scalar.clone(), scalar]).expect("merges");
        assert_eq!(merged.kernel, None);
    }

    #[test]
    fn summary_markdown_renders_the_kernel_block_only_for_simd_runs() {
        let plain = empty_artifact(None).summary_markdown();
        assert!(!plain.contains("Transient kernel"));

        let simd = empty_artifact(Some(simd_section())).summary_markdown();
        assert!(simd.contains("## Transient kernel (SIMD quads)"), "{simd}");
        assert!(simd.contains("quad occupancy"), "{simd}");
        assert!(simd.contains("Batched dispatch: 100 lanes"), "{simd}");
    }

    #[test]
    fn the_farm_section_is_never_serialized_so_farm_and_local_artifacts_match() {
        // The byte-identity contract of the whole farm: attaching transport telemetry to
        // the in-memory artifact must not change one byte of the JSON.
        let mut farmed = empty_artifact(None);
        farmed.farm = Some(farm_section());
        let local = empty_artifact(None);
        assert_eq!(
            farmed.to_json().expect("serializes"),
            local.to_json().expect("serializes"),
            "the farm section leaked into the artifact JSON"
        );
        // And a reload therefore comes back without it.
        let back = RunArtifact::from_json(&farmed.to_json().expect("serializes")).expect("parses");
        assert_eq!(back.farm, None);
    }

    #[test]
    fn summary_markdown_renders_the_farm_block_only_for_farm_runs() {
        let plain = empty_artifact(None).summary_markdown();
        assert!(!plain.contains("Simulation farm"));

        let mut farmed = empty_artifact(None);
        farmed.farm = Some(farm_section());
        let summary = farmed.summary_markdown();
        assert!(
            summary.contains("## Simulation farm (1 of 2 workers live after the run)"),
            "{summary}"
        );
        assert!(
            summary.contains("3 failovers, 2 reconnects, 1 heartbeats missed, 1 jobs"),
            "{summary}"
        );
        assert!(summary.contains("90 lanes solved on workers"), "{summary}");
    }
}
