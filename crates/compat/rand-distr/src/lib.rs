//! Offline stand-in for the `rand_distr` crate: the [`Distribution`] trait and the
//! [`StandardNormal`] distribution, which is all this workspace draws from it.

#![forbid(unsafe_code)]

use rand::Rng;

/// Types that can generate values of `T` from a source of randomness.
pub trait Distribution<T> {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method; the spare draw is discarded to keep the type stateless.
        loop {
            let u = 2.0 * rng.gen::<f64>() - 1.0;
            let v = 2.0 * rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

/// A normal distribution with arbitrary mean and standard deviation.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution `N(mean, std_dev²)`.
    ///
    /// # Errors
    ///
    /// Returns an error when `std_dev` is negative or non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, &'static str> {
        if std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite() {
            Ok(Self { mean, std_dev })
        } else {
            Err("invalid normal distribution parameters")
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * StandardNormal.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| StandardNormal.sample(&mut rng))
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn shifted_normal() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = Normal::new(5.0, 0.5).unwrap();
        let xs: Vec<f64> = (0..5_000).map(|_| dist.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.05);
        assert!(Normal::new(0.0, -1.0).is_err());
    }
}
