//! Section V speedup decomposition and Section IV cost model:
//! `O(k·Nsample)` vs `O(NLUT·Nsample)` vs `O(k·Nsample + NTech·NLUT)`, and the split of the
//! measured nominal speedup into the compact-model contribution and the Bayesian-prior
//! contribution (paper: ≈6× and ≈2.5×, for ≈15× total).

use criterion::{criterion_group, criterion_main, Criterion};
use slic::cost::SpeedupDecomposition;
use slic::nominal::{MethodKind, NominalStudy, NominalStudyConfig};
use slic::prelude::*;
use slic::report::markdown_table;
use slic::CostModel;
use slic_bench::{banner, bench_historical_db, finfet_history};

fn regenerate(db: &HistoricalDatabase) {
    banner(
        "Cost model + speedup decomposition (Section IV complexity claim, Section V text)",
        "simulation counts per arc for each flow, and where the measured speedup comes from",
    );

    // Analytic cost model at a few operating points.
    let headers: Vec<String> = [
        "NLUT",
        "k",
        "Nsample",
        "LUT cost",
        "proposed cost",
        "with history",
        "speedup",
        "speedup w/ history",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for (n_lut, k, n_sample) in [(60, 4, 1000), (60, 7, 1000), (100, 5, 1000), (60, 4, 300)] {
        let cost = CostModel::new(n_lut, k, n_sample, 6);
        rows.push(vec![
            n_lut.to_string(),
            k.to_string(),
            n_sample.to_string(),
            cost.lut_cost().to_string(),
            cost.proposed_cost().to_string(),
            cost.proposed_cost_with_history().to_string(),
            format!("{:.1}x", cost.speedup()),
            format!("{:.1}x", cost.speedup_with_history()),
        ]);
    }
    println!("{}", markdown_table(&headers, &rows));

    // Measured decomposition from a nominal study.
    let config = NominalStudyConfig {
        validation_points: 200,
        training_counts: vec![1, 2, 3, 5, 10, 20, 50],
        ..NominalStudyConfig::default()
    };
    let study = NominalStudy::new(TechnologyNode::target_14nm(), db, config);
    let cell = Cell::new(CellKind::Nor2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let result = study.run(cell, &arc, TimingMetric::Delay);
    let bayes = result.curve(MethodKind::ProposedBayesian);
    let lse = result.curve(MethodKind::ProposedLse);
    let lut = result.curve(MethodKind::Lut);
    let target = bayes
        .final_error()
        .max(lse.final_error())
        .max(lut.final_error());
    if let (Some(b), Some(l), Some(t)) = (
        bayes.simulations_to_reach(target),
        lse.simulations_to_reach(target),
        lut.simulations_to_reach(target),
    ) {
        let decomposition = SpeedupDecomposition {
            lut_simulations: t,
            lse_simulations: l,
            bayesian_simulations: b,
        };
        println!(
            "measured at {target:.2}% accuracy for {}: LUT needs {t}, LSE needs {l}, Bayesian needs {b} simulations",
            arc.id()
        );
        println!(
            "  -> compact model alone: {:.1}x, Bayesian prior on top: {:.1}x, total: {:.1}x",
            decomposition.model_contribution(),
            decomposition.bayesian_contribution(),
            decomposition.total()
        );
    }
    println!("(paper: ~6x from the model, ~2.5x from the prior, ~15x total)");
}

fn bench(c: &mut Criterion) {
    let db = bench_historical_db(&finfet_history());
    regenerate(&db);
    c.bench_function("cost_model_evaluation", |b| {
        b.iter(|| {
            let cost = CostModel::new(60, 4, 1000, 6);
            (cost.speedup(), cost.speedup_with_history())
        })
    });
}

criterion_group! {
    name = benches;
    config = slic_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
