#!/usr/bin/env python3
"""Compare a fresh transient-kernel bench run against the committed baseline.

Usage: bench_kernel_diff.py <fresh.json> [committed.json]

Prints one row per (variant, preset) with the committed and fresh throughput and
their ratio, then the derived speedup keys from both artifacts.  Exits non-zero
when a fresh variant falls below half its committed throughput — the same
noise-tolerant floor the CI gate applies to the speedup ratios — so the target
doubles as a local pre-push regression check.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    fresh = json.load(open(sys.argv[1]))
    committed_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_transient.json"
    committed = json.load(open(committed_path))

    def by_key(report):
        return {(v["name"], v["config"]): v for v in report["variants"]}

    committed_variants = by_key(committed)
    fresh_variants = by_key(fresh)
    modes = (
        "committed " + ("reduced" if committed.get("reduced") else "full"),
        "fresh " + ("reduced" if fresh.get("reduced") else "full"),
    )
    print(f"transient-kernel diff vs {committed_path} ({modes[0]}, {modes[1]})\n")
    header = f"{'variant':<17}{'preset':<10}{'committed':>14}{'fresh':>14}{'ratio':>8}"
    print(header)
    print("-" * len(header))
    regressed = []
    for key in committed_variants:
        name, config = key
        base = committed_variants[key]["sims_per_sec"]
        if key not in fresh_variants:
            print(f"{name:<17}{config:<10}{base:>14.0f}{'(missing)':>14}{'':>8}")
            continue
        now = fresh_variants[key]["sims_per_sec"]
        ratio = now / base
        flag = "  <-- regressed" if ratio < 0.5 else ""
        if ratio < 0.5:
            regressed.append(key)
        print(f"{name:<17}{config:<10}{base:>14.0f}{now:>14.0f}{ratio:>7.2f}x{flag}")

    print(f"\n{'speedup':<44}{'committed':>10}{'fresh':>10}")
    print("-" * 64)
    for key, base in committed["speedups"].items():
        now = fresh["speedups"].get(key)
        now_text = f"{now:>9.2f}x" if now is not None else f"{'(missing)':>10}"
        print(f"{key:<44}{base:>9.2f}x{now_text}")

    if regressed:
        names = ", ".join(f"{n}/{c}" for n, c in regressed)
        print(f"\nREGRESSION: {names} below half the committed throughput")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
