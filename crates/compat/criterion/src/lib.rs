//! Offline stand-in for the `criterion` crate.
//!
//! Reproduces the bench-harness surface the `slic-bench` targets use: [`Criterion`] with
//! `sample_size` / `measurement_time` / `warm_up_time`, [`Criterion::bench_function`] with
//! a [`Bencher`], [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//! Timing is a plain wall-clock loop that reports min / mean / max per iteration — enough
//! to compare kernels and regenerate the experiment tables, without the statistical
//! machinery of the real crate.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measurement starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its per-iteration timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warm-up: run the body until the warm-up budget is spent.
        let warm_up_end = Instant::now() + self.warm_up_time;
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        while Instant::now() < warm_up_end {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
        }
        let per_iter =
            (bencher.elapsed / bencher.iterations.max(1) as u32).max(Duration::from_nanos(1));

        // Size iterations so the samples fit the measurement budget.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iterations = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, u32::MAX as u128) as usize;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iterations,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iterations.max(1) as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<44} time: [{} {} {}]  ({} samples x {} iters)",
            format_seconds(samples[0]),
            format_seconds(mean),
            format_seconds(*samples.last().expect("non-empty samples")),
            samples.len(),
            iterations,
        );
        self
    }
}

/// Runs the benchmarked body and records how long it took.
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Times `body`, called `iterations` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn formatting_covers_scales() {
        assert!(format_seconds(2.0).ends_with(" s"));
        assert!(format_seconds(2e-3).ends_with(" ms"));
        assert!(format_seconds(2e-6).ends_with(" us"));
        assert!(format_seconds(2e-9).ends_with(" ns"));
    }
}
