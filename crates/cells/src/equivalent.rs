//! Equivalent-inverter reduction (Fig. 1(b) of the paper).
//!
//! To characterize an arbitrary combinational cell the paper maps it onto an "equivalent
//! inverter": the pull-up network is replaced by a single equivalent PMOS and the pull-down
//! network by a single equivalent NMOS.  The reduction used here follows the classical
//! logical-effort rules:
//!
//! * a series stack of `k` conducting devices behaves like one device of `1/k` the width;
//! * parallel devices that are off for the analysed arc do not conduct but still load the
//!   output with their junction capacitance;
//! * design-time stack compensation (the cell's internal up-sizing) and drive strength
//!   multiply the unit device width.

use crate::arc::{TimingArc, Transition};
use crate::cell::Cell;
use serde::{Deserialize, Serialize};
use slic_device::{Mosfet, Polarity, ProcessSample, TechnologyNode};
use slic_units::{Amperes, Farads, Volts};

/// The two-transistor equivalent of a cell for one timing arc under one process seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquivalentInverter {
    cell: Cell,
    pmos: Mosfet,
    nmos: Mosfet,
    output_parasitic_cap: Farads,
    input_cap: Farads,
}

impl EquivalentInverter {
    /// Builds the equivalent inverter of `cell` in `tech` for the given process seed.
    ///
    /// The reduction is arc-independent for the supported topologies (the worst-case series
    /// path is used), so the same equivalent inverter serves both the rise and fall arcs;
    /// the arc only selects which device does the switching.
    pub fn build(tech: &TechnologyNode, cell: Cell, seed: &ProcessSample) -> Self {
        let kind = cell.kind();
        let (series_up, parallel_up) = kind.pull_up_topology();
        let (series_down, parallel_down) = kind.pull_down_topology();

        let pmos_nominal = seed.apply(tech.pmos(), Polarity::Pmos);
        let nmos_nominal = seed.apply(tech.nmos(), Polarity::Nmos);

        // Conducting-path equivalent widths: design sizing and drive strength divided by the
        // series stack depth.
        let pmos_eq_width = cell.pmos_width_factor() / series_up as f64;
        let nmos_eq_width = cell.nmos_width_factor() / series_down as f64;

        let pmos = Mosfet::pmos(pmos_nominal.clone()).scaled_width(pmos_eq_width);
        let nmos = Mosfet::nmos(nmos_nominal.clone()).scaled_width(nmos_eq_width);

        // Every device whose drain touches the output node contributes junction capacitance,
        // whether or not it conducts for this arc.
        let pmos_total_width = cell.pmos_width_factor();
        let nmos_total_width = cell.nmos_width_factor();
        let drain_cap = pmos_nominal.drain_cap * pmos_total_width * parallel_up.max(1) as f64
            + nmos_nominal.drain_cap * nmos_total_width * parallel_down.max(1) as f64;
        let output_parasitic_cap =
            Farads(tech.cell_parasitic_cap().value() * cell.drive().multiplier() + drain_cap);

        // The switching input drives the gates of one PMOS and one NMOS of the conducting
        // paths (scaled by the cell sizing).
        let input_cap = Farads(
            pmos_nominal.gate_cap * cell.pmos_width_factor() / series_up as f64
                + nmos_nominal.gate_cap * cell.nmos_width_factor() / series_down as f64,
        );

        Self {
            cell,
            pmos,
            nmos,
            output_parasitic_cap,
            input_cap,
        }
    }

    /// Builds the nominal (no process variation) equivalent inverter.
    pub fn nominal(tech: &TechnologyNode, cell: Cell) -> Self {
        Self::build(tech, cell, &ProcessSample::nominal())
    }

    /// The reduced cell.
    pub fn cell(&self) -> Cell {
        self.cell
    }

    /// The equivalent pull-up device.
    pub fn pmos(&self) -> &Mosfet {
        &self.pmos
    }

    /// The equivalent pull-down device.
    pub fn nmos(&self) -> &Mosfet {
        &self.nmos
    }

    /// Parasitic capacitance lumped at the output node (junctions plus local wiring).
    ///
    /// This is the physical origin of the `Cpar` fitting parameter of the compact timing
    /// model.
    pub fn output_parasitic_cap(&self) -> Farads {
        self.output_parasitic_cap
    }

    /// Capacitance presented to the driving stage by the switching input pin.
    pub fn input_cap(&self) -> Farads {
        self.input_cap
    }

    /// The device that drives the output for the given output transition: the PMOS for a
    /// rising output, the NMOS for a falling output.
    pub fn driving_device(&self, output_transition: Transition) -> &Mosfet {
        match output_transition {
            Transition::Rise => &self.pmos,
            Transition::Fall => &self.nmos,
        }
    }

    /// Effective switching current (Eq. 4 of the paper) of the device that drives the given
    /// arc at supply `vdd`.
    pub fn ieff(&self, arc: &TimingArc, vdd: Volts) -> Amperes {
        self.driving_device(arc.output_transition()).ieff(vdd)
    }

    /// Saturation current of the driving device at supply `vdd`.
    pub fn idsat(&self, arc: &TimingArc, vdd: Volts) -> Amperes {
        self.driving_device(arc.output_transition()).idsat(vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellKind, DriveStrength};

    fn tech() -> TechnologyNode {
        TechnologyNode::n14_finfet()
    }

    fn cell(kind: CellKind) -> Cell {
        Cell::new(kind, DriveStrength::X1)
    }

    #[test]
    fn inverter_reduction_is_identity_like() {
        let t = tech();
        let inv = EquivalentInverter::nominal(&t, cell(CellKind::Inv));
        // The equivalent devices of an inverter are just the cell's own devices.
        assert!((inv.nmos().params().width / t.nmos().width - 1.0).abs() < 1e-12);
        assert!((inv.pmos().params().width / t.pmos().width - 1.0).abs() < 1e-12);
        assert!(inv.output_parasitic_cap().value() > 0.0);
        assert!(inv.input_cap().value() > 0.0);
    }

    #[test]
    fn nand2_pull_down_is_weakened_by_stacking() {
        let t = tech();
        let inv = EquivalentInverter::nominal(&t, cell(CellKind::Inv));
        let nand = EquivalentInverter::nominal(&t, cell(CellKind::Nand2));
        // Stack of two compensated by 1.35 sizing: equivalent width < inverter width.
        assert!(nand.nmos().params().width < inv.nmos().params().width);
        // Pull-up is a parallel pair: single conducting PMOS at full width.
        assert!(
            (nand.pmos().params().width - inv.pmos().params().width).abs()
                / inv.pmos().params().width
                < 1e-9
        );
    }

    #[test]
    fn nor2_pull_up_is_weakened_by_stacking() {
        let t = tech();
        let inv = EquivalentInverter::nominal(&t, cell(CellKind::Inv));
        let nor = EquivalentInverter::nominal(&t, cell(CellKind::Nor2));
        assert!(nor.pmos().params().width < inv.pmos().params().width);
        assert!(
            (nor.nmos().params().width - inv.nmos().params().width).abs()
                / inv.nmos().params().width
                < 1e-9
        );
    }

    #[test]
    fn multi_input_cells_have_more_output_parasitics() {
        let t = tech();
        let inv = EquivalentInverter::nominal(&t, cell(CellKind::Inv));
        let nand3 = EquivalentInverter::nominal(&t, cell(CellKind::Nand3));
        assert!(nand3.output_parasitic_cap().value() > inv.output_parasitic_cap().value());
    }

    #[test]
    fn drive_strength_scales_currents_and_parasitics() {
        let t = tech();
        let x1 = EquivalentInverter::nominal(&t, Cell::new(CellKind::Inv, DriveStrength::X1));
        let x4 = EquivalentInverter::nominal(&t, Cell::new(CellKind::Inv, DriveStrength::X4));
        let arc = TimingArc::new(
            Cell::new(CellKind::Inv, DriveStrength::X1),
            0,
            Transition::Fall,
        );
        let vdd = t.vdd_nominal();
        let ratio = x4.ieff(&arc, vdd).value() / x1.ieff(&arc, vdd).value();
        assert!((ratio - 4.0).abs() < 1e-9);
        assert!(x4.output_parasitic_cap().value() > x1.output_parasitic_cap().value());
        assert!(x4.input_cap().value() > x1.input_cap().value());
    }

    #[test]
    fn rise_arc_is_driven_by_pmos_and_fall_by_nmos() {
        let t = tech();
        let c = cell(CellKind::Inv);
        let eq = EquivalentInverter::nominal(&t, c);
        assert_eq!(
            eq.driving_device(Transition::Rise).polarity(),
            Polarity::Pmos
        );
        assert_eq!(
            eq.driving_device(Transition::Fall).polarity(),
            Polarity::Nmos
        );
        let rise = TimingArc::new(c, 0, Transition::Rise);
        let fall = TimingArc::new(c, 0, Transition::Fall);
        let vdd = t.vdd_nominal();
        assert!(eq.ieff(&rise, vdd).value() > 0.0);
        assert!(eq.ieff(&fall, vdd).value() > 0.0);
        assert!(eq.idsat(&fall, vdd).value() > eq.ieff(&fall, vdd).value());
    }

    #[test]
    fn process_seed_changes_the_currents() {
        let t = tech();
        let c = cell(CellKind::Nor2);
        let arc = TimingArc::new(c, 0, Transition::Fall);
        let nominal = EquivalentInverter::nominal(&t, c);
        let mut seed = ProcessSample::nominal();
        seed.delta_vth_n = 0.06;
        let slow = EquivalentInverter::build(&t, c, &seed);
        let vdd = t.vdd_nominal();
        assert!(slow.ieff(&arc, vdd).value() < nominal.ieff(&arc, vdd).value());
        assert_eq!(slow.cell(), c);
    }
}
