//! Table I: extracted delay-model parameters `{kd, Cpar, V', α}` and fitting error for INV,
//! NAND2 and NOR2 across three technologies.
//!
//! The regenerated table is printed; Criterion then times a single full-grid least-squares
//! extraction (the kernel each table row costs).

use criterion::{criterion_group, criterion_main, Criterion};
use slic::prelude::*;
use slic::report::markdown_table;
use slic_bench::banner;

fn fit_cell(
    engine: &CharacterizationEngine,
    cell: Cell,
    points: &[InputPoint],
) -> (TimingParams, f64) {
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let nominal = ProcessSample::nominal();
    let samples: Vec<TimingSample> = points
        .iter()
        .map(|p| {
            let m = engine.simulate_nominal(cell, &arc, p);
            TimingSample::new(*p, engine.ieff(&arc, p, &nominal), m.delay)
        })
        .collect();
    let fit = LeastSquaresFitter::new().fit(&samples);
    let error = fit.params.mean_relative_error_percent(&samples);
    (fit.params, error)
}

fn regenerate() {
    banner(
        "Table I",
        "Extracted delay-model parameters for INV/NAND2/NOR2 in three technologies",
    );
    // Three technologies labelled A/B/C as in the paper.
    let technologies = [
        ("A", TechnologyNode::n14_finfet()),
        ("B", TechnologyNode::n16_finfet()),
        ("C", TechnologyNode::n20_bulk()),
    ];
    let headers: Vec<String> = [
        "Tech",
        "Cell",
        "kd",
        "Cpar (fF)",
        "V' (V)",
        "alpha (fF/ps)",
        "% error",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for (label, tech) in technologies {
        let engine = CharacterizationEngine::with_config(tech, TransientConfig::fast())
            .expect("valid transient configuration");
        let points = engine.input_space().lut_grid(4, 4, 3);
        for kind in CellKind::PAPER_TRIO {
            let cell = Cell::new(kind, DriveStrength::X1);
            let (params, error) = fit_cell(&engine, cell, &points);
            rows.push(vec![
                label.to_string(),
                kind.name().to_string(),
                format!("{:.3}", params.kd),
                format!("{:.3}", params.cpar),
                format!("{:.3}", params.v_prime),
                format!("{:.3}", params.alpha),
                format!("{:.2}%", error),
            ]);
        }
    }
    println!("{}", markdown_table(&headers, &rows));
    println!("(paper: kd 0.356-0.416, Cpar 0.95-1.47 fF, V' -0.29..-0.21 V, errors 0.9-2.1 %)");
}

fn bench(c: &mut Criterion) {
    regenerate();
    let engine =
        CharacterizationEngine::with_config(TechnologyNode::n14_finfet(), TransientConfig::fast())
            .expect("valid transient configuration");
    let points = engine.input_space().lut_grid(3, 3, 2);
    c.bench_function("table1_single_cell_extraction", |b| {
        b.iter(|| {
            fit_cell(
                &engine,
                Cell::new(CellKind::Nor2, DriveStrength::X1),
                &points,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = slic_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
