//! Golden-parity suite: the embedded-pair kernel and its batched lanes against the seed
//! RK4 reference, across a (cell × arc × slew × load × vdd) grid.
//!
//! Three invariants are asserted:
//!
//! 1. **Accuracy parity** — delay and output slew from the new integrator stay within
//!    0.5 % (relative) of the seed RK4 trajectory at both configuration presets;
//! 2. **Batch/scalar identity** — batch lane `i` is *bitwise* equal to the scalar
//!    simulation of seed `i` (same for sweep lanes vs points);
//! 3. **Determinism** — repeating a simulation (scalar or batched) reproduces identical
//!    bits.

use rand::rngs::StdRng;
use rand::SeedableRng;
use slic_cells::{Cell, CellKind, DriveStrength, EquivalentInverter, TimingArc, Transition};
use slic_device::TechnologyNode;
use slic_spice::{
    simulate_switching, simulate_switching_batch, simulate_switching_rk4,
    simulate_switching_with_stats, InputPoint, TransientConfig,
};
use slic_units::{Farads, Seconds, Volts};

const PARITY_TOLERANCE: f64 = 0.005;

fn grid_points() -> Vec<InputPoint> {
    let mut points = Vec::new();
    for sin_ps in [1.0, 5.0, 15.0] {
        for cload_ff in [0.5, 2.0, 5.0] {
            for vdd in [0.65, 0.8, 1.0] {
                points.push(InputPoint::new(
                    Seconds::from_picoseconds(sin_ps),
                    Farads::from_femtofarads(cload_ff),
                    Volts(vdd),
                ));
            }
        }
    }
    points
}

fn grid_cells() -> Vec<Cell> {
    vec![
        Cell::new(CellKind::Inv, DriveStrength::X1),
        Cell::new(CellKind::Nand2, DriveStrength::X2),
        Cell::new(CellKind::Nor2, DriveStrength::X1),
    ]
}

#[test]
fn embedded_pair_stays_within_half_percent_of_seed_rk4() {
    // The golden reference is the seed RK4 at its *accurate* preset — the configuration the
    // seed itself designates for baseline ("golden") characterization.  Both presets of the
    // new kernel are held to it: the fast preset of the embedded pair must deliver
    // golden-baseline accuracy, not merely match the fast RK4's own discretization error
    // (which drifts ~1 % from a fine-step truth at the fastest corners).
    let tech = TechnologyNode::n14_finfet();
    let mut worst_delay = 0.0_f64;
    let mut worst_slew = 0.0_f64;
    for config in [TransientConfig::accurate(), TransientConfig::fast()] {
        for cell in grid_cells() {
            let eq = EquivalentInverter::nominal(&tech, cell);
            for transition in Transition::BOTH {
                let arc = TimingArc::new(cell, 0, transition);
                for point in grid_points() {
                    let new = simulate_switching(&eq, &arc, &point, &config).unwrap();
                    let golden =
                        simulate_switching_rk4(&eq, &arc, &point, &TransientConfig::accurate())
                            .unwrap();
                    let delay_err =
                        (new.delay.value() - golden.delay.value()).abs() / golden.delay.value();
                    let slew_err = (new.output_slew.value() - golden.output_slew.value()).abs()
                        / golden.output_slew.value();
                    assert!(
                        delay_err < PARITY_TOLERANCE,
                        "{cell} {transition} at {point}: delay parity {delay_err:.4}"
                    );
                    assert!(
                        slew_err < PARITY_TOLERANCE,
                        "{cell} {transition} at {point}: slew parity {slew_err:.4}"
                    );
                    worst_delay = worst_delay.max(delay_err);
                    worst_slew = worst_slew.max(slew_err);
                }
            }
        }
    }
    // The tolerance must not be sitting on the edge: the grid's worst case should clear it
    // with real margin, so small platform-to-platform rounding differences cannot flake.
    assert!(
        worst_delay < 0.8 * PARITY_TOLERANCE && worst_slew < 0.8 * PARITY_TOLERANCE,
        "parity margin too thin: worst delay {worst_delay:.4}, worst slew {worst_slew:.4}"
    );
}

#[test]
fn embedded_pair_cuts_steps_at_least_twofold_on_the_grid() {
    let tech = TechnologyNode::n14_finfet();
    let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
    let eq = EquivalentInverter::nominal(&tech, cell);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    for config in [TransientConfig::accurate(), TransientConfig::fast()] {
        let mut new_evals = 0u64;
        let mut rk4_evals = 0u64;
        for point in grid_points() {
            let (_, s) = simulate_switching_with_stats(&eq, &arc, &point, &config).unwrap();
            new_evals += s.device_evals;
            let (_, s) =
                slic_spice::simulate_switching_rk4_with_stats(&eq, &arc, &point, &config).unwrap();
            rk4_evals += s.device_evals;
        }
        assert!(
            2 * new_evals <= rk4_evals,
            "expected >= 2x fewer device evals ({new_evals} vs {rk4_evals})"
        );
    }
}

#[test]
fn batch_lane_is_bitwise_equal_to_scalar_across_the_grid() {
    let tech = TechnologyNode::n28_bulk();
    let cell = Cell::new(CellKind::Nand2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let mut rng = StdRng::seed_from_u64(2015);
    let seeds = tech.variation().sample_n(&mut rng, 16);
    let lanes: Vec<EquivalentInverter> = seeds
        .iter()
        .map(|s| EquivalentInverter::build(&tech, cell, s))
        .collect();
    let config = TransientConfig::fast();
    for point in grid_points() {
        let batch = simulate_switching_batch(&lanes, &arc, &point, &config).unwrap();
        for (i, (eq, lane)) in lanes.iter().zip(&batch).enumerate() {
            let scalar = simulate_switching(eq, &arc, &point, &config).unwrap();
            let lane = lane.clone().unwrap();
            assert_eq!(
                lane.delay.value().to_bits(),
                scalar.delay.value().to_bits(),
                "lane {i} delay bits diverge at {point}"
            );
            assert_eq!(
                lane.output_slew.value().to_bits(),
                scalar.output_slew.value().to_bits(),
                "lane {i} slew bits diverge at {point}"
            );
        }
    }
}

#[test]
fn repeated_runs_are_bitwise_deterministic() {
    let tech = TechnologyNode::n14_finfet();
    let cell = Cell::new(CellKind::Nor2, DriveStrength::X2);
    let eq = EquivalentInverter::nominal(&tech, cell);
    let config = TransientConfig::accurate();
    for transition in Transition::BOTH {
        let arc = TimingArc::new(cell, 0, transition);
        for point in grid_points() {
            let a = simulate_switching(&eq, &arc, &point, &config).unwrap();
            let b = simulate_switching(&eq, &arc, &point, &config).unwrap();
            assert_eq!(a.delay.value().to_bits(), b.delay.value().to_bits());
            assert_eq!(
                a.output_slew.value().to_bits(),
                b.output_slew.value().to_bits()
            );
        }
    }
}
