//! Property tests: the trace escaper and the profile parser are exact inverses.
//!
//! Span names and attribute values come from cell names, arc labels, worker names and
//! error strings — any of which can carry quotes, backslashes, newlines or stray
//! control bytes.  A trace line must survive them all: whatever string goes into
//! [`escape_json`], parsing the resulting JSON string literal must return it verbatim.

use proptest::prelude::*;
use slic_obs::profile::{parse_json, Json};
use slic_obs::trace::escape_json;

/// Escape `text`, embed it as a JSON string value, parse it back, compare.
fn round_trips(text: &str) -> Result<(), TestCaseError> {
    let document = format!("{{\"k\":\"{}\"}}", escape_json(text));
    let parsed = parse_json(&document)
        .map_err(|err| TestCaseError::fail(format!("escaped form must parse: {err}")))?;
    match parsed.get("k") {
        Some(Json::Str(back)) if back == text => Ok(()),
        other => Err(TestCaseError::fail(format!(
            "round trip mangled {text:?} into {other:?}"
        ))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_unicode_round_trips(
        raw in proptest::collection::vec(0u32..0x11_0000u32, 0..64usize),
    ) {
        // Arbitrary scalar values, surrogates skipped (not representable in &str).
        let text: String = raw.iter().filter_map(|&code| char::from_u32(code)).collect();
        round_trips(&text)?;
    }

    #[test]
    fn quote_and_control_heavy_strings_round_trip(
        picks in proptest::collection::vec(0u32..12u32, 0..48usize),
    ) {
        // The adversarial alphabet: every character class the escaper special-cases.
        const PIECES: [&str; 12] = [
            "\"", "\\", "\n", "\r", "\t", "\u{0}", "\u{1f}", "INV_X1",
            "fall@0", " ", "\\u0041", "привет",
        ];
        let text: String = picks
            .iter()
            .map(|p| PIECES[*p as usize % PIECES.len()])
            .collect();
        round_trips(&text)?;
    }
}
