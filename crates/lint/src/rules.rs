//! The lint rules: a single pass over one file's token stream with a lightweight
//! item/attribute tracker — enough structure to know the current brace depth, whether we
//! are inside `#[cfg(test)]` code, what the pending `#[derive(...)]` list is, and which
//! `MutexGuard` bindings are live.  No syntax tree, no type information: every rule is a
//! documented token-level approximation, and the fixture corpus in `tests/` pins down
//! exactly what each one does and does not catch.

use crate::config::LintConfig;
use crate::lexer::{lex, Token, TokenKind};

/// The shipped rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Determinism: no `HashMap`/`HashSet`, wall-clock reads or thread identity in
    /// artifact-producing code.
    D1,
    /// Float hygiene: no `==`/`!=` against float literals, no `derive(Hash)`/`derive(Eq)`
    /// over float fields, no decimal float serialization in wire/cache modules.
    F1,
    /// Panic policy: no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in library code.
    P1,
    /// Lock discipline: no solver or wire-I/O call while a `MutexGuard` binding is live.
    L1,
    /// Lint hygiene: malformed suppression comments (missing rule list or justification).
    S1,
}

impl Rule {
    /// The short code used in output, baselines and suppression comments.
    pub fn code(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::F1 => "F1",
            Rule::P1 => "P1",
            Rule::L1 => "L1",
            Rule::S1 => "S1",
        }
    }

    /// The human name printed alongside the code.
    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "determinism",
            Rule::F1 => "float-hygiene",
            Rule::P1 => "panic-policy",
            Rule::L1 => "lock-discipline",
            Rule::S1 => "suppression",
        }
    }

    /// Deny rules fail a run even when baselined: the baseline mechanism exists to freeze
    /// pre-existing debt, and determinism/float-hygiene debt in artifact crates is never
    /// acceptable debt.
    pub fn is_deny(self) -> bool {
        matches!(self, Rule::D1 | Rule::F1 | Rule::S1)
    }

    /// Parses a rule code as written in a suppression comment.
    pub fn from_code(code: &str) -> Option<Self> {
        match code {
            "D1" => Some(Rule::D1),
            "F1" => Some(Rule::F1),
            "P1" => Some(Rule::P1),
            "L1" => Some(Rule::L1),
            "S1" => Some(Rule::S1),
            _ => None,
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.name(), self.code())
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub rule: Rule,
    pub message: String,
    /// The trimmed source line — the baseline key component that survives line drift.
    pub excerpt: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rules apply to one file, resolved from the policy's path lists.
#[derive(Debug, Clone, Default)]
pub struct FilePolicy {
    pub d1: bool,
    /// Within D1 scope, spare the wall-clock idents (`Instant`/`SystemTime`) only.
    /// Opt-out by construction: the observability crate owns the workspace's clock
    /// behind a `Clock` trait, but its containers and thread identity stay denied.
    pub d1_wallclock_exempt: bool,
    pub f1_eq: bool,
    pub f1_derive: bool,
    pub f1_wire: bool,
    pub p1: bool,
    pub l1: bool,
}

impl FilePolicy {
    /// Resolves the policy for a workspace-relative path.
    pub fn for_path(path: &str, config: &LintConfig) -> Self {
        let matches = |prefixes: &[String]| prefixes.iter().any(|p| path.starts_with(p.as_str()));
        Self {
            d1: matches(&config.d1_paths),
            d1_wallclock_exempt: matches(&config.d1_wallclock_exempt_paths),
            f1_eq: matches(&config.f1_eq_paths),
            f1_derive: matches(&config.f1_derive_paths),
            f1_wire: matches(&config.f1_wire_paths),
            p1: matches(&config.p1_paths),
            l1: matches(&config.l1_paths),
        }
    }

    fn any(&self) -> bool {
        self.d1 || self.f1_eq || self.f1_derive || self.f1_wire || self.p1 || self.l1
    }
}

/// The outcome of analyzing one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub violations: Vec<Violation>,
    /// Findings silenced by a well-formed `// slic-lint: allow(...) -- reason` comment.
    pub suppressed: usize,
}

/// A parsed suppression comment: which rules it allows, anchored to its line.
struct Suppression {
    line: u32,
    rules: Vec<Rule>,
}

/// A live `let guard = ...lock()...` binding.
struct Guard {
    name: String,
    depth: i32,
    line: u32,
}

/// Analyzes one file under `policy`.
pub fn analyze_file(
    path: &str,
    source: &str,
    policy: &FilePolicy,
    config: &LintConfig,
) -> FileReport {
    let mut report = FileReport::default();
    let tokens = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let excerpt = |line: u32| -> String {
        lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    // Pass 1: suppression comments (they apply even to files no rule covers — a stale
    // malformed suppression should fail everywhere the scanner looks).
    let mut suppressions: Vec<Suppression> = Vec::new();
    for token in tokens.iter().filter(|t| t.kind == TokenKind::LineComment) {
        let body = token.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("slic-lint:") else {
            continue;
        };
        match parse_suppression(rest) {
            Some(rules) => suppressions.push(Suppression {
                line: token.line,
                rules,
            }),
            None => report.violations.push(Violation {
                file: path.to_string(),
                line: token.line,
                rule: Rule::S1,
                message: "malformed suppression; write `// slic-lint: allow(<rule>) -- <reason>` \
                          (the justification is mandatory)"
                    .to_string(),
                excerpt: excerpt(token.line),
            }),
        }
    }
    if !policy.any() {
        return report;
    }

    // Pass 2: the rules, over code tokens only.
    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();
    let mut findings: Vec<Violation> = Vec::new();
    let mut emit = |rule: Rule, line: u32, message: String| {
        findings.push(Violation {
            file: path.to_string(),
            line,
            rule,
            message,
            excerpt: excerpt(line),
        });
    };

    let mut depth: i32 = 0;
    let mut test_scopes: Vec<i32> = Vec::new();
    let mut pending_cfg_test: Option<i32> = None;
    let mut pending_derive: Vec<String> = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();

    let punct = |i: usize| code.get(i).and_then(|t| t.punct());
    let ident = |i: usize| {
        code.get(i)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
    };

    let mut i = 0usize;
    while i < code.len() {
        let token = code[i];
        let in_test = !test_scopes.is_empty();
        match token.kind {
            TokenKind::Punct => match token.text.as_bytes()[0] {
                b'#' if punct(i + 1) == Some('[') => {
                    // Attribute: collect to the matching `]`, inspect, and skip past it so
                    // `#[should_panic]` or `#[cfg(test)]` internals never reach the rules.
                    let (attr, next) = collect_attr(&code, i + 1);
                    let has = |name: &str| attr.iter().any(|t| t.text == name);
                    if has("derive") {
                        pending_derive.extend(
                            attr.iter()
                                .filter(|t| t.kind == TokenKind::Ident && t.text != "derive")
                                .map(|t| t.text.clone()),
                        );
                    }
                    if has("cfg") && has("test") && !has("not") {
                        pending_cfg_test = Some(depth);
                    }
                    i = next;
                    continue;
                }
                b'{' => {
                    depth += 1;
                    if pending_cfg_test.take().is_some() {
                        test_scopes.push(depth);
                    }
                }
                b'}' => {
                    depth -= 1;
                    test_scopes.retain(|&entered| entered <= depth);
                    guards.retain(|g| g.depth <= depth);
                }
                b';' => {
                    if pending_cfg_test == Some(depth) {
                        pending_cfg_test = None;
                    }
                    pending_derive.clear();
                }
                b'=' if punct(i + 1) == Some('=') => {
                    if policy.f1_eq && !in_test && float_operand(&code, i, 2) {
                        emit(
                            Rule::F1,
                            token.line,
                            "`==` against a float; exact float equality is not a stable \
                             predicate — compare with a tolerance or match on bit patterns"
                                .to_string(),
                        );
                    }
                    i += 2;
                    continue;
                }
                b'!' if punct(i + 1) == Some('=') => {
                    if policy.f1_eq && !in_test && float_operand(&code, i, 2) {
                        emit(
                            Rule::F1,
                            token.line,
                            "`!=` against a float; exact float equality is not a stable \
                             predicate — compare with a tolerance or match on bit patterns"
                                .to_string(),
                        );
                    }
                    i += 2;
                    continue;
                }
                _ => {}
            },
            TokenKind::Ident => {
                let text = token.text.as_str();
                match text {
                    "struct" | "enum" if !pending_derive.is_empty() => {
                        if policy.f1_derive && !in_test {
                            check_float_derive(&code, i, &pending_derive, config, &mut emit);
                        }
                        pending_derive.clear();
                    }
                    "fn" | "impl" | "mod" | "trait" | "union" | "type" | "const" | "static" => {
                        pending_derive.clear();
                    }
                    "let" => {
                        if policy.l1 && !in_test {
                            if let Some(guard) = guard_binding(&code, i, depth) {
                                guards.push(guard);
                            }
                        }
                    }
                    "drop" if punct(i + 1) == Some('(') => {
                        if let Some(name) = ident(i + 2) {
                            guards.retain(|g| g.name != name);
                        }
                    }
                    "HashMap" | "HashSet" if policy.d1 && !in_test => emit(
                        Rule::D1,
                        token.line,
                        format!(
                            "`{text}` in an artifact-producing crate: iteration order varies \
                             per process and can leak into artifacts, reports or wire bytes — \
                             use BTreeMap/BTreeSet, or sort before emitting"
                        ),
                    ),
                    "Instant" | "SystemTime"
                        if policy.d1 && !policy.d1_wallclock_exempt && !in_test =>
                    {
                        emit(
                            Rule::D1,
                            token.line,
                            format!(
                                "`{text}` in an artifact-producing crate: wall-clock reads \
                                 must not influence result paths (bit-identical replays \
                                 would break)"
                            ),
                        )
                    }
                    "current"
                        if policy.d1
                            && !in_test
                            && punct(i.wrapping_sub(1)) == Some(':')
                            && punct(i.wrapping_sub(2)) == Some(':')
                            && ident(i.wrapping_sub(3)) == Some("thread") =>
                    {
                        emit(
                            Rule::D1,
                            token.line,
                            "`thread::current()` in an artifact-producing crate: thread \
                             identity must not influence result paths"
                                .to_string(),
                        )
                    }
                    "unwrap" | "expect"
                        if policy.p1
                            && !in_test
                            && punct(i.wrapping_sub(1)) == Some('.')
                            && punct(i + 1) == Some('(') =>
                    {
                        emit(
                            Rule::P1,
                            token.line,
                            format!(
                                "`.{text}()` in library code can panic; return a typed error \
                                 or recover, or suppress with a justification when the \
                                 invariant is structural"
                            ),
                        )
                    }
                    "panic" | "unreachable" | "todo" | "unimplemented"
                        if policy.p1 && !in_test && punct(i + 1) == Some('!') =>
                    {
                        emit(
                            Rule::P1,
                            token.line,
                            format!(
                                "`{text}!` in library code; return a typed error, or suppress \
                                 with a justification when failing loudly is the contract"
                            ),
                        )
                    }
                    "format" | "write" | "writeln" | "print" | "println"
                        if policy.f1_wire
                            && !in_test
                            && punct(i + 1) == Some('!')
                            && punct(i + 2) == Some('(') =>
                    {
                        if let Some(line) = float_in_macro_args(&code, i + 2) {
                            emit(
                                Rule::F1,
                                line,
                                "float literal formatted as decimal text in a wire/cache \
                                 module; floats cross serialization boundaries as hex bit \
                                 patterns only (see SimKey)"
                                    .to_string(),
                            );
                        }
                    }
                    "to_string"
                        if policy.f1_wire
                            && !in_test
                            && punct(i.wrapping_sub(1)) == Some('.')
                            && code
                                .get(i.wrapping_sub(2))
                                .is_some_and(|t| t.kind == TokenKind::Float) =>
                    {
                        emit(
                            Rule::F1,
                            token.line,
                            "float serialized via `to_string` in a wire/cache module; use \
                             hex bit patterns"
                                .to_string(),
                        )
                    }
                    _ => {
                        if policy.l1
                            && !in_test
                            && !guards.is_empty()
                            && config.l1_blocking_calls.iter().any(|c| c == text)
                            && punct(i + 1) == Some('(')
                        {
                            let held: Vec<String> = guards
                                .iter()
                                .map(|g| format!("`{}` (line {})", g.name, g.line))
                                .collect();
                            emit(
                                Rule::L1,
                                token.line,
                                format!(
                                    "`{text}` called while a lock guard is live ({}); a \
                                     blocked call stalls every thread contending on that \
                                     lock — drop the guard first, or suppress with the \
                                     reason the lock must span the call",
                                    held.join(", ")
                                ),
                            );
                        }
                    }
                }
            }
            TokenKind::Str
                if policy.f1_wire
                    && !in_test
                    && (token.text.contains("{:.")
                        || token.text.contains("{:e}")
                        || token.text.contains("{:E}")) =>
            {
                emit(
                    Rule::F1,
                    token.line,
                    "precision/exponent float formatting in a wire/cache module; floats \
                     cross serialization boundaries as hex bit patterns only"
                        .to_string(),
                );
            }
            _ => {}
        }
        i += 1;
    }

    // Apply suppressions: a comment covers its own line (trailing form) and the line
    // directly below (stand-alone form).
    for violation in findings {
        let allowed = suppressions.iter().any(|s| {
            (s.line == violation.line || s.line + 1 == violation.line)
                && s.rules.contains(&violation.rule)
        });
        if allowed {
            report.suppressed += 1;
        } else {
            report.violations.push(violation);
        }
    }
    report.violations.sort_by_key(|v| (v.line, v.rule));
    report
}

/// Parses the tail of a suppression comment: `allow(P1, L1) -- reason`.  `None` when the
/// rule list or the justification is missing or empty.
fn parse_suppression(rest: &str) -> Option<Vec<Rule>> {
    let rest = rest.trim();
    let inner = rest.strip_prefix("allow")?.trim_start();
    let inner = inner.strip_prefix('(')?;
    let (list, tail) = inner.split_once(')')?;
    let rules: Option<Vec<Rule>> = list
        .split(',')
        .map(|code| Rule::from_code(code.trim()))
        .collect();
    let rules = rules?;
    if rules.is_empty() {
        return None;
    }
    let reason = tail.trim().strip_prefix("--")?.trim();
    if reason.is_empty() {
        return None;
    }
    Some(rules)
}

/// Collects the tokens of a `#[...]` attribute starting at the `[`; returns the inner
/// tokens and the index just past the closing `]`.
fn collect_attr<'a>(code: &[&'a Token], open: usize) -> (Vec<&'a Token>, usize) {
    let mut inner = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while i < code.len() {
        match code[i].punct() {
            Some('[') => depth += 1,
            Some(']') => {
                depth -= 1;
                if depth == 0 {
                    return (inner, i + 1);
                }
            }
            _ => {}
        }
        if depth >= 1 && i > open {
            inner.push(code[i]);
        }
        i += 1;
    }
    (inner, i)
}

/// Is either operand of the comparison operator at `i` (of `width` punct tokens) a float
/// literal?  A unary minus in front of the literal is looked through.
fn float_operand(code: &[&Token], i: usize, width: usize) -> bool {
    let is_float = |index: usize| code.get(index).is_some_and(|t| t.kind == TokenKind::Float);
    if i > 0 && is_float(i - 1) {
        return true;
    }
    let mut right = i + width;
    if code.get(right).and_then(|t| t.punct()) == Some('-') {
        right += 1;
    }
    is_float(right)
}

/// Scans a format-macro argument list starting at its `(` for a float literal (or the
/// `f64`/`f32` type names, which only appear in casts of values being stringified);
/// returns the line of the first hit.
fn float_in_macro_args(code: &[&Token], open: usize) -> Option<u32> {
    let mut depth = 0i32;
    let mut i = open;
    while let Some(token) = code.get(i) {
        match token.punct() {
            Some('(' | '{' | '[') => depth += 1,
            Some(')' | '}' | ']') => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            _ => {}
        }
        if i > open
            && (token.kind == TokenKind::Float
                || (token.kind == TokenKind::Ident && (token.text == "f64" || token.text == "f32")))
        {
            return Some(token.line);
        }
        i += 1;
    }
    None
}

/// From a `struct`/`enum` keyword with a pending Hash/Eq derive, looks ahead into the
/// item body for float-typed fields (raw `f32`/`f64`, or configured wrapper types).
fn check_float_derive(
    code: &[&Token],
    keyword: usize,
    derives: &[String],
    config: &LintConfig,
    emit: &mut impl FnMut(Rule, u32, String),
) {
    let hash_or_eq: Vec<&str> = derives
        .iter()
        .map(String::as_str)
        .filter(|d| *d == "Hash" || *d == "Eq")
        .collect();
    if hash_or_eq.is_empty() {
        return;
    }
    // Find the body: `{ ... }` (named fields) or `( ... )` (tuple), stopping at `;`.
    let mut i = keyword + 1;
    let (open, close) = loop {
        // Non-punct tokens (the item name, generics idents) are stepped over; only a
        // unit-struct `;` or the end of the stream means there is no body to scan.
        let Some(token) = code.get(i) else { return };
        match token.punct() {
            Some('{') => break ('{', '}'),
            Some('(') => break ('(', ')'),
            Some(';') => return,
            _ => i += 1,
        }
    };
    let mut depth = 0i32;
    let mut floaty: Option<(u32, String)> = None;
    while i < code.len() {
        let token = code[i];
        match token.punct() {
            Some(c) if c == open => depth += 1,
            Some(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if token.kind == TokenKind::Ident
            && (token.text == "f32"
                || token.text == "f64"
                || config.f1_float_wrappers.contains(&token.text))
        {
            floaty.get_or_insert((token.line, token.text.clone()));
        }
        i += 1;
    }
    if let Some((_, type_name)) = floaty {
        let line = code[keyword].line;
        emit(
            Rule::F1,
            line,
            format!(
                "derive({}) on an item with float-bearing field type `{type_name}`; float \
                 payloads have no total equality or stable hash — key by bit patterns \
                 instead",
                hash_or_eq.join("/")
            ),
        );
    }
}

/// Does the `let` statement starting at `i` bind a `.lock()` result?  Returns the guard
/// to track: the first pattern identifier, at the current depth.
fn guard_binding(code: &[&Token], let_index: usize, depth: i32) -> Option<Guard> {
    // Pattern: first ident after `let`, skipping `mut`.
    let mut i = let_index + 1;
    let mut name: Option<(String, u32)> = None;
    while let Some(token) = code.get(i) {
        match token.kind {
            TokenKind::Ident if token.text == "mut" => {}
            TokenKind::Ident => {
                name = Some((token.text.clone(), token.line));
                break;
            }
            _ => return None,
        }
        i += 1;
    }
    let (name, line) = name?;
    // Scan the statement (to the `;` at this nesting level) for `.lock(`.
    let mut nest = 0i32;
    while let Some(token) = code.get(i) {
        match token.punct() {
            Some('(' | '{' | '[') => nest += 1,
            Some(')' | '}' | ']') => {
                if nest == 0 {
                    return None;
                }
                nest -= 1;
            }
            Some(';') if nest == 0 => return None,
            _ => {}
        }
        if token.kind == TokenKind::Ident
            && token.text == "lock"
            && code.get(i.wrapping_sub(1)).and_then(|t| t.punct()) == Some('.')
            && code.get(i + 1).and_then(|t| t.punct()) == Some('(')
        {
            return Some(Guard { name, depth, line });
        }
        i += 1;
    }
    None
}
