//! The characterization engine: the workspace's stand-in for "HSPICE plus a deck generator".
//!
//! A [`CharacterizationEngine`] is bound to one [`TechnologyNode`] and provides the three
//! operations every experiment in the paper is built from:
//!
//! 1. single switching-event simulations (`.TRAN` on one arc at one input condition),
//! 2. sweeps over many input conditions for a fixed process seed (the `.ALTER` loop), and
//! 3. Monte Carlo ensembles over process seeds at fixed input conditions.
//!
//! Every transient simulation increments a shared [`SimulationCounter`].  The paper's
//! reported speedups are ratios of simulation counts at equal accuracy, so the counter is
//! the basis of all cost accounting in `slic-core` and the benches.

use crate::cache::{SimKey, SimulationCache};
use crate::input::{InputPoint, InputSpace};
use crate::measure::TimingMeasurement;
use crate::transient::{simulate_switching, TransientConfig};
use rayon::prelude::*;
use slic_cells::{Cell, EquivalentInverter, TimingArc};
use slic_device::{ProcessSample, TechnologyNode};
use slic_units::Amperes;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// An invalid [`TransientConfig`] was supplied to an engine constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: String) -> Self {
        Self { message }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid transient configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// A cloneable handle onto a shared count of transient simulations.
#[derive(Debug, Clone, Default)]
pub struct SimulationCounter {
    count: Arc<AtomicU64>,
}

impl SimulationCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Adds `n` simulations to the count.
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Resets the count to zero and returns the previous value.
    pub fn reset(&self) -> u64 {
        self.count.swap(0, Ordering::Relaxed)
    }
}

/// The set of cache coordinates currently being solved, shared by every clone of one
/// engine.  It implements single-flight deduplication: when two workers miss on the same
/// coordinate concurrently, exactly one runs the solver and the others wait for its
/// result, so a coordinate is never paid for twice within a process and the simulation
/// totals of a run are deterministic regardless of thread interleaving.
#[derive(Debug, Default)]
struct InFlight {
    keys: Mutex<HashSet<SimKey>>,
    done: Condvar,
}

/// Removes an in-flight claim when the owning solve finishes — including by panic, so
/// sibling workers waiting on the coordinate wake up and retry instead of hanging.
struct InFlightClaim<'a> {
    inflight: &'a InFlight,
    key: &'a SimKey,
}

impl Drop for InFlightClaim<'_> {
    fn drop(&mut self) {
        let mut keys = self
            .inflight
            .keys
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        keys.remove(self.key);
        self.inflight.done.notify_all();
    }
}

/// A simulator front-end bound to one technology node.
#[derive(Clone)]
pub struct CharacterizationEngine {
    tech: TechnologyNode,
    config: TransientConfig,
    counter: SimulationCounter,
    cache: Option<Arc<dyn SimulationCache>>,
    inflight: Arc<InFlight>,
}

impl fmt::Debug for CharacterizationEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CharacterizationEngine")
            .field("tech", &self.tech)
            .field("config", &self.config)
            .field("counter", &self.counter)
            .field("cache", &self.cache.as_ref().map(|_| "..."))
            .finish()
    }
}

impl CharacterizationEngine {
    /// Creates an engine with the accurate (baseline-grade) transient settings.
    pub fn new(tech: TechnologyNode) -> Self {
        Self::with_config(tech, TransientConfig::accurate())
            .expect("the accurate preset always validates")
    }

    /// Creates an engine with an explicit transient configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first field that fails validation.
    pub fn with_config(tech: TechnologyNode, config: TransientConfig) -> Result<Self, ConfigError> {
        config.validate().map_err(ConfigError::new)?;
        Ok(Self {
            tech,
            config,
            counter: SimulationCounter::new(),
            cache: None,
            inflight: Arc::new(InFlight::default()),
        })
    }

    /// Replaces this engine's counter with a shared one, so simulation costs from several
    /// engines (one per technology, or one per pipeline stage) aggregate into one total.
    #[must_use]
    pub fn with_shared_counter(mut self, counter: SimulationCounter) -> Self {
        self.counter = counter;
        self
    }

    /// Attaches a simulation cache.  Subsequent [`simulate`](Self::simulate) calls answer
    /// repeated coordinates from the cache without running the solver and without
    /// incrementing the simulation counter.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<dyn SimulationCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached simulation cache, if any.
    pub fn cache(&self) -> Option<&Arc<dyn SimulationCache>> {
        self.cache.as_ref()
    }

    /// The technology this engine simulates.
    pub fn tech(&self) -> &TechnologyNode {
        &self.tech
    }

    /// The transient solver configuration in use.
    pub fn config(&self) -> &TransientConfig {
        &self.config
    }

    /// Handle onto the shared simulation counter.
    pub fn counter(&self) -> &SimulationCounter {
        &self.counter
    }

    /// Total number of transient simulations run so far (across clones of this engine).
    pub fn simulation_count(&self) -> u64 {
        self.counter.count()
    }

    /// The default characterization input space of this technology (paper ranges for slew
    /// and load, the technology's own supply window).
    pub fn input_space(&self) -> InputSpace {
        InputSpace::paper_space(self.tech.vdd_range())
    }

    /// Builds the equivalent inverter of `cell` under `seed`.
    pub fn equivalent_inverter(&self, cell: Cell, seed: &ProcessSample) -> EquivalentInverter {
        EquivalentInverter::build(&self.tech, cell, seed)
    }

    /// Effective switching current (Eq. 4) of the arc's driving device at the given supply.
    ///
    /// This is a pair of DC operating-point evaluations, not a transient simulation, so it
    /// does not increment the simulation counter — matching the paper's assumption that
    /// `Ieff` per input vector is available from performance modelling.
    pub fn ieff(&self, arc: &TimingArc, point: &InputPoint, seed: &ProcessSample) -> Amperes {
        self.equivalent_inverter(arc.cell(), seed)
            .ieff(arc, point.vdd)
    }

    /// Runs one transient simulation of `arc` at `point` under process seed `seed`.
    ///
    /// With a cache attached, concurrent requests for one coordinate are single-flighted:
    /// the first requester solves while the others wait and are then answered from the
    /// cache, so each unique coordinate is simulated (and counted) exactly once per
    /// process and the run's cost totals are deterministic under any thread schedule.
    ///
    /// # Panics
    ///
    /// Panics if the transient solver cannot complete the transition — with the supported
    /// technologies and the paper input space this only happens for unphysical inputs, and
    /// failing loudly is preferable to silently corrupting a characterization campaign.
    pub fn simulate(
        &self,
        cell: Cell,
        arc: &TimingArc,
        point: &InputPoint,
        seed: &ProcessSample,
    ) -> TimingMeasurement {
        let Some(cache) = self.cache.as_ref() else {
            return self.solve(cell, arc, point, seed);
        };
        let key = SimKey::new(self.tech.name(), arc, point, seed, &self.config);
        if let Some(measurement) = cache.lookup(&key) {
            return measurement;
        }
        // Miss: claim the coordinate, or wait for whichever worker already owns it.
        {
            let mut keys = self.inflight.keys.lock().expect("in-flight set poisoned");
            loop {
                if let Some(measurement) = cache.lookup(&key) {
                    return measurement;
                }
                if !keys.contains(&key) {
                    keys.insert(key.clone());
                    break;
                }
                keys = self
                    .inflight
                    .done
                    .wait(keys)
                    .expect("in-flight set poisoned");
            }
        }
        let claim = InFlightClaim {
            inflight: &self.inflight,
            key: &key,
        };
        let measurement = self.solve(cell, arc, point, seed);
        cache.store(key.clone(), measurement);
        drop(claim);
        measurement
    }

    /// Runs the solver unconditionally and counts the simulation.
    fn solve(
        &self,
        cell: Cell,
        arc: &TimingArc,
        point: &InputPoint,
        seed: &ProcessSample,
    ) -> TimingMeasurement {
        let eq = EquivalentInverter::build(&self.tech, cell, seed);
        self.counter.add(1);
        simulate_switching(&eq, arc, point, &self.config).unwrap_or_else(|err| {
            panic!(
                "transient simulation failed for {} at {point}: {err}",
                arc.id()
            )
        })
    }

    /// Runs one transient simulation at the nominal process corner.
    pub fn simulate_nominal(
        &self,
        cell: Cell,
        arc: &TimingArc,
        point: &InputPoint,
    ) -> TimingMeasurement {
        self.simulate(cell, arc, point, &ProcessSample::nominal())
    }

    /// Simulates `arc` at every input point for a fixed process seed (the `.ALTER` sweep),
    /// in parallel.
    pub fn sweep(
        &self,
        cell: Cell,
        arc: &TimingArc,
        points: &[InputPoint],
        seed: &ProcessSample,
    ) -> Vec<TimingMeasurement> {
        points
            .par_iter()
            .map(|p| self.simulate(cell, arc, p, seed))
            .collect()
    }

    /// Simulates `arc` at every input point at the nominal corner, in parallel.
    pub fn sweep_nominal(
        &self,
        cell: Cell,
        arc: &TimingArc,
        points: &[InputPoint],
    ) -> Vec<TimingMeasurement> {
        self.sweep(cell, arc, points, &ProcessSample::nominal())
    }

    /// Monte Carlo ensemble: simulates `arc` at one input point under every process seed,
    /// in parallel.  Element `i` of the result corresponds to `seeds[i]`.
    pub fn monte_carlo(
        &self,
        cell: Cell,
        arc: &TimingArc,
        point: &InputPoint,
        seeds: &[ProcessSample],
    ) -> Vec<TimingMeasurement> {
        seeds
            .par_iter()
            .map(|s| self.simulate(cell, arc, point, s))
            .collect()
    }

    /// Full statistical baseline: simulates every (input point, seed) pair.
    ///
    /// The result is indexed `[point][seed]`.
    pub fn monte_carlo_sweep(
        &self,
        cell: Cell,
        arc: &TimingArc,
        points: &[InputPoint],
        seeds: &[ProcessSample],
    ) -> Vec<Vec<TimingMeasurement>> {
        points
            .par_iter()
            .map(|p| {
                seeds
                    .iter()
                    .map(|s| self.simulate(cell, arc, p, s))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slic_cells::{CellKind, DriveStrength, Transition};
    use slic_units::{Farads, Seconds, Volts};

    fn engine() -> CharacterizationEngine {
        CharacterizationEngine::with_config(TechnologyNode::n14_finfet(), TransientConfig::fast())
            .expect("fast preset validates")
    }

    fn inv_fall() -> (Cell, TimingArc) {
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        (cell, TimingArc::new(cell, 0, Transition::Fall))
    }

    fn pt(sin_ps: f64, cload_ff: f64, vdd: f64) -> InputPoint {
        InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(cload_ff),
            Volts(vdd),
        )
    }

    #[test]
    fn simulation_counter_counts_every_run() {
        let eng = engine();
        let (cell, arc) = inv_fall();
        assert_eq!(eng.simulation_count(), 0);
        let _ = eng.simulate_nominal(cell, &arc, &pt(5.0, 2.0, 0.8));
        assert_eq!(eng.simulation_count(), 1);
        let points = vec![pt(2.0, 1.0, 0.8), pt(5.0, 2.0, 0.9), pt(9.0, 4.0, 0.7)];
        let _ = eng.sweep_nominal(cell, &arc, &points);
        assert_eq!(eng.simulation_count(), 4);
        assert_eq!(eng.counter().reset(), 4);
        assert_eq!(eng.simulation_count(), 0);
    }

    #[test]
    fn counter_is_shared_between_clones() {
        let eng = engine();
        let clone = eng.clone();
        let (cell, arc) = inv_fall();
        let _ = clone.simulate_nominal(cell, &arc, &pt(5.0, 2.0, 0.8));
        assert_eq!(eng.simulation_count(), 1);
    }

    #[test]
    fn ieff_does_not_count_as_a_simulation() {
        let eng = engine();
        let (_, arc) = inv_fall();
        let i = eng.ieff(&arc, &pt(5.0, 2.0, 0.8), &ProcessSample::nominal());
        assert!(i.value() > 0.0);
        assert_eq!(eng.simulation_count(), 0);
    }

    #[test]
    fn sweep_results_match_individual_runs() {
        let eng = engine();
        let (cell, arc) = inv_fall();
        let points = vec![pt(2.0, 1.0, 0.8), pt(8.0, 4.0, 0.7)];
        let swept = eng.sweep_nominal(cell, &arc, &points);
        for (p, m) in points.iter().zip(&swept) {
            let single = eng.simulate_nominal(cell, &arc, p);
            assert_eq!(*m, single, "sweep must be deterministic and ordered");
        }
    }

    #[test]
    fn monte_carlo_produces_spread() {
        let eng = engine();
        let (cell, arc) = inv_fall();
        let mut rng = StdRng::seed_from_u64(11);
        let seeds = eng.tech().variation().sample_n(&mut rng, 48);
        let ms = eng.monte_carlo(cell, &arc, &pt(5.0, 2.0, 0.8), &seeds);
        assert_eq!(ms.len(), 48);
        let delays: Vec<f64> = ms.iter().map(|m| m.delay.value()).collect();
        let mean = delays.iter().sum::<f64>() / delays.len() as f64;
        let sd = (delays.iter().map(|d| (d - mean).powi(2)).sum::<f64>()
            / (delays.len() - 1) as f64)
            .sqrt();
        assert!(sd > 0.0, "process variation must spread the delays");
        assert!(
            sd / mean < 0.5,
            "spread should stay moderate (cv = {})",
            sd / mean
        );
    }

    #[test]
    fn monte_carlo_sweep_shape() {
        let eng = engine();
        let (cell, arc) = inv_fall();
        let mut rng = StdRng::seed_from_u64(3);
        let seeds = eng.tech().variation().sample_n(&mut rng, 5);
        let points = vec![pt(2.0, 1.0, 0.8), pt(8.0, 4.0, 0.7), pt(5.0, 2.0, 0.9)];
        let grid = eng.monte_carlo_sweep(cell, &arc, &points, &seeds);
        assert_eq!(grid.len(), 3);
        assert!(grid.iter().all(|row| row.len() == 5));
        assert_eq!(eng.simulation_count(), 15);
    }

    #[test]
    fn input_space_uses_tech_supply_window() {
        let eng = engine();
        let space = eng.input_space();
        let (lo, hi) = space.vdd_range();
        assert_eq!((lo, hi), eng.tech().vdd_range());
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let bad = TransientConfig {
            dv_max_fraction: 0.5,
            ..TransientConfig::fast()
        };
        let err = CharacterizationEngine::with_config(TechnologyNode::n14_finfet(), bad)
            .expect_err("out-of-range dv_max_fraction must be rejected");
        assert!(err.to_string().contains("invalid transient configuration"));
        assert!(err.to_string().contains("dv_max_fraction"));
    }

    #[test]
    fn cache_short_circuits_repeat_simulations() {
        use crate::cache::InMemorySimCache;
        let cache = Arc::new(InMemorySimCache::new());
        let eng = engine().with_cache(cache.clone());
        let (cell, arc) = inv_fall();
        let point = pt(5.0, 2.0, 0.8);
        let first = eng.simulate_nominal(cell, &arc, &point);
        assert_eq!(eng.simulation_count(), 1);
        assert_eq!(cache.hits(), 0);
        let second = eng.simulate_nominal(cell, &arc, &point);
        assert_eq!(second, first, "cache must replay the archived measurement");
        assert_eq!(
            eng.simulation_count(),
            1,
            "cache hits must not count as simulations"
        );
        assert_eq!(cache.hits(), 1);
        // A different coordinate still simulates.
        let _ = eng.simulate_nominal(cell, &arc, &pt(6.0, 2.0, 0.8));
        assert_eq!(eng.simulation_count(), 2);
    }

    #[test]
    fn concurrent_identical_requests_solve_once() {
        use crate::cache::InMemorySimCache;
        let cache = Arc::new(InMemorySimCache::new());
        let eng = engine().with_cache(cache.clone());
        let (cell, arc) = inv_fall();
        // Sixteen workers racing on one coordinate: single-flight must collapse them to
        // one paid solve; the other fifteen are answered from the cache (counted hits).
        let points = vec![pt(5.0, 2.0, 0.8); 16];
        let measurements = eng.sweep_nominal(cell, &arc, &points);
        assert!(measurements.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(eng.simulation_count(), 1, "one coordinate, one solve");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 15);
    }

    #[test]
    fn shared_counter_aggregates_across_engines() {
        let counter = SimulationCounter::new();
        let a = engine().with_shared_counter(counter.clone());
        let b = CharacterizationEngine::with_config(
            TechnologyNode::n16_finfet(),
            TransientConfig::fast(),
        )
        .expect("fast preset validates")
        .with_shared_counter(counter.clone());
        let (cell, arc) = inv_fall();
        let _ = a.simulate_nominal(cell, &arc, &pt(5.0, 2.0, 0.8));
        let _ = b.simulate_nominal(cell, &arc, &pt(5.0, 2.0, 0.8));
        assert_eq!(counter.count(), 2);
    }
}
