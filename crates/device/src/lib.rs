//! Variation-aware compact MOSFET model and synthetic technology nodes.
//!
//! The paper characterizes production cell libraries through SPICE simulations driven by
//! proprietary BSIM design kits spanning six technology nodes (14 nm–45 nm, bulk and SOI,
//! FinFET and planar).  Those kits are not available, so this crate provides the
//! substitution described in `DESIGN.md`: a simplified **virtual-source compact model**
//! (in the spirit of the MVS model the paper itself cites for its `Ieff` definition) plus a
//! family of synthetic technology nodes whose nominal parameters and variability are tuned
//! to behave like successive real nodes.
//!
//! What matters for reproducing the paper is that the oracle
//! `(cell, Sin, Cload, Vdd, process seed) → (Td, Sout)` has transistor-like physics:
//!
//! * drain current that saturates with `Vds` and rises steeply but sub-quadratically with
//!   `Vgs` above threshold, with subthreshold conduction below it;
//! * delay that grows super-linearly as `Vdd` approaches the threshold voltage — this is
//!   what makes low-`Vdd` delay distributions non-Gaussian (Fig. 9);
//! * an effective drive current `Ieff` (Eq. 4 of the paper) computable from two DC points;
//! * node-to-node parameter shifts that are *moderate*, so that priors learned on older
//!   nodes carry useful information about a new one (Table I).
//!
//! # Examples
//!
//! ```
//! use slic_device::{Mosfet, TechnologyNode};
//! use slic_units::Volts;
//!
//! let tech = TechnologyNode::n14_finfet();
//! let nmos = Mosfet::nmos(tech.nmos().clone());
//! let id = nmos.drain_current(Volts(0.8), Volts(0.8));
//! assert!(id.value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod mosfet;
pub mod tech;
pub mod variation;
pub mod vmath;

pub use compiled::{
    drain_current4_batch, CompiledDevice, CompiledDeviceX4, CompiledInverter, CompiledInverterX4,
    SweepScratch,
};
pub use mosfet::{DeviceParams, Mosfet, Polarity};
pub use tech::{ProcessFlavor, TechnologyKind, TechnologyNode};
pub use variation::{ProcessSample, ProcessVariation};
