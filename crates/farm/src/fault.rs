//! Deterministic fault injection for the farm's resilience layer.
//!
//! A [`FaultPlan`] makes a worker misbehave *on purpose*, in a way that is a pure
//! function of the plan (and its seed) — never of wall-clock entropy — so every chaos
//! test and the CI chaos smoke job replay the identical failure sequence.  The plan is
//! threaded through [`WorkerOptions`](crate::worker::WorkerOptions) and exposed on the
//! CLI as `slic worker --fault-*` flags; a production worker simply leaves it `None`.
//!
//! The four knobs map one-to-one onto the broker-side recovery paths they exercise:
//!
//! | knob                   | failure injected                          | recovery exercised            |
//! |------------------------|-------------------------------------------|-------------------------------|
//! | `drop_after_messages`  | connection dropped mid-conversation       | failover + re-dial/re-admit   |
//! | `delay_ms`             | slow replies (seeded extra latency)       | work-stealing rebalance       |
//! | `garbage_every`        | non-protocol bytes instead of results     | protocol-violation failover   |
//! | `refuse_reconnects`    | next K re-dials refused after a drop      | backoff schedule + retry      |
//!
//! Injected *timing* (the delay) never reaches an artifact: lanes are re-assembled by
//! index on the broker side, so a delayed worker changes throughput, not bytes.

use crate::backoff::splitmix64;

/// A seeded misbehaviour script for one worker.
///
/// The default plan injects nothing; see the module docs for what each knob exercises.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every randomized choice the plan makes (jittered delays); two workers
    /// given different seeds misbehave on decorrelated schedules.
    pub seed: u64,
    /// Drop the connection (no reply, no shutdown) after this many messages have been
    /// received on it.  Counted per connection, so a re-admitted worker flaps again —
    /// the repeating-failure case reconnection must survive.
    pub drop_after_messages: Option<u64>,
    /// Sleep this many milliseconds (plus up to half again of seeded jitter) before
    /// answering each batch.
    pub delay_ms: Option<u64>,
    /// Reply to every N-th batch with garbage bytes instead of a `results` message.
    pub garbage_every: Option<u64>,
    /// After a fault-injected drop, refuse this many broker re-dials (accept + close
    /// before the handshake) before serving again — exercises the backoff schedule.
    pub refuse_reconnects: u64,
}

impl FaultPlan {
    /// `true` when any fault is armed (a `Default` plan is inert).
    pub fn is_active(&self) -> bool {
        self.drop_after_messages.is_some()
            || self.delay_ms.is_some()
            || self.garbage_every.is_some()
            || self.refuse_reconnects > 0
    }

    /// The injected latency before answering batch number `batch` (0-based), in
    /// milliseconds — `0` when no delay is armed.  Pure in `(self, batch)`.
    pub fn delay_for_batch_ms(&self, batch: u64) -> u64 {
        match self.delay_ms {
            Some(delay) => {
                let jitter_span = delay / 2;
                let draw = splitmix64(self.seed ^ batch.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                delay
                    + if jitter_span == 0 {
                        0
                    } else {
                        draw % (jitter_span + 1)
                    }
            }
            None => 0,
        }
    }

    /// `true` when batch number `batch` (0-based) should be answered with garbage.
    pub fn garbles_batch(&self, batch: u64) -> bool {
        match self.garbage_every {
            Some(every) => every > 0 && (batch + 1).is_multiple_of(every),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert_eq!(plan.delay_for_batch_ms(0), 0);
        assert!(!plan.garbles_batch(0));
    }

    #[test]
    fn delays_are_seeded_jittered_and_deterministic() {
        let plan = FaultPlan {
            seed: 7,
            delay_ms: Some(40),
            ..FaultPlan::default()
        };
        for batch in 0..16 {
            let delay = plan.delay_for_batch_ms(batch);
            assert_eq!(
                delay,
                plan.delay_for_batch_ms(batch),
                "pure in (plan, batch)"
            );
            assert!(
                (40..=60).contains(&delay),
                "batch {batch} waited {delay} ms"
            );
        }
        let reseeded = FaultPlan { seed: 8, ..plan };
        let schedule = |p: &FaultPlan| (0..16).map(|b| p.delay_for_batch_ms(b)).collect::<Vec<_>>();
        assert_ne!(schedule(&plan), schedule(&reseeded));
    }

    #[test]
    fn garbage_fires_on_every_nth_batch() {
        let plan = FaultPlan {
            garbage_every: Some(3),
            ..FaultPlan::default()
        };
        let garbled: Vec<u64> = (0..9).filter(|&b| plan.garbles_batch(b)).collect();
        assert_eq!(garbled, vec![2, 5, 8]);
        // A zero divisor is inert, not a panic.
        let zero = FaultPlan {
            garbage_every: Some(0),
            ..FaultPlan::default()
        };
        assert!(!(0..9).any(|b| zero.garbles_batch(b)));
    }
}
