//! Timing arcs: which input switches and which way the output moves.

use crate::cell::Cell;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Direction of a signal transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Transition {
    /// Low-to-high transition.
    Rise,
    /// High-to-low transition.
    Fall,
}

impl Transition {
    /// Both transition directions.
    pub const BOTH: [Transition; 2] = [Transition::Rise, Transition::Fall];

    /// The opposite transition.
    pub fn complement(self) -> Self {
        match self {
            Transition::Rise => Transition::Fall,
            Transition::Fall => Transition::Rise,
        }
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transition::Rise => f.write_str("RISE"),
            Transition::Fall => f.write_str("FALL"),
        }
    }
}

/// One timing arc of a cell: a switching input pin and the resulting output transition.
///
/// Following the paper, only one timing arc is modelled at a time (no simultaneous input
/// switching); the other inputs are held at their non-controlling values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimingArc {
    cell: Cell,
    input_pin: usize,
    output_transition: Transition,
}

impl TimingArc {
    /// Creates a timing arc.
    ///
    /// # Panics
    ///
    /// Panics if `input_pin` is out of range for the cell.
    pub fn new(cell: Cell, input_pin: usize, output_transition: Transition) -> Self {
        assert!(
            input_pin < cell.input_count(),
            "input pin {input_pin} out of range for {} ({} inputs)",
            cell.name(),
            cell.input_count()
        );
        Self {
            cell,
            input_pin,
            output_transition,
        }
    }

    /// The cell this arc belongs to.
    pub fn cell(&self) -> Cell {
        self.cell
    }

    /// Index of the switching input pin.
    pub fn input_pin(&self) -> usize {
        self.input_pin
    }

    /// Direction of the output transition.
    pub fn output_transition(&self) -> Transition {
        self.output_transition
    }

    /// Direction of the *input* transition that causes this output transition.
    ///
    /// For an inverting cell a rising output is caused by a falling input and vice versa;
    /// for the (non-inverting) buffer they coincide.
    pub fn input_transition(&self) -> Transition {
        if self.cell.kind().is_inverting() {
            self.output_transition.complement()
        } else {
            self.output_transition
        }
    }

    /// Enumerates the characterized arcs of a cell: input pin 0 (the worst-case pin for the
    /// supported topologies), both output transitions.
    pub fn primary_arcs(cell: Cell) -> Vec<TimingArc> {
        Transition::BOTH
            .iter()
            .map(|&t| TimingArc::new(cell, 0, t))
            .collect()
    }

    /// Enumerates every (pin, transition) arc of a cell.
    pub fn all_arcs(cell: Cell) -> Vec<TimingArc> {
        (0..cell.input_count())
            .flat_map(|pin| {
                Transition::BOTH
                    .iter()
                    .map(move |&t| TimingArc::new(cell, pin, t))
            })
            .collect()
    }

    /// Short identifier such as `"NAND2_X1/A0/FALL"`.
    pub fn id(&self) -> String {
        format!(
            "{}/A{}/{}",
            self.cell.name(),
            self.input_pin,
            self.output_transition
        )
    }
}

impl fmt::Display for TimingArc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellKind, DriveStrength};

    fn nand2() -> Cell {
        Cell::new(CellKind::Nand2, DriveStrength::X1)
    }

    #[test]
    fn transition_complement_and_display() {
        assert_eq!(Transition::Rise.complement(), Transition::Fall);
        assert_eq!(Transition::Fall.complement(), Transition::Rise);
        assert_eq!(format!("{}", Transition::Rise), "RISE");
    }

    #[test]
    fn arc_construction_and_accessors() {
        let arc = TimingArc::new(nand2(), 1, Transition::Fall);
        assert_eq!(arc.cell(), nand2());
        assert_eq!(arc.input_pin(), 1);
        assert_eq!(arc.output_transition(), Transition::Fall);
        assert_eq!(arc.id(), "NAND2_X1/A1/FALL");
        assert_eq!(format!("{arc}"), "NAND2_X1/A1/FALL");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pin_rejected() {
        let _ = TimingArc::new(nand2(), 5, Transition::Rise);
    }

    #[test]
    fn inverting_cells_flip_input_direction() {
        let arc = TimingArc::new(nand2(), 0, Transition::Rise);
        assert_eq!(arc.input_transition(), Transition::Fall);
        let buf = Cell::new(CellKind::Buf, DriveStrength::X1);
        let arc = TimingArc::new(buf, 0, Transition::Rise);
        assert_eq!(arc.input_transition(), Transition::Rise);
    }

    #[test]
    fn arc_enumeration_counts() {
        assert_eq!(TimingArc::primary_arcs(nand2()).len(), 2);
        assert_eq!(TimingArc::all_arcs(nand2()).len(), 4);
        let nor3 = Cell::new(CellKind::Nor3, DriveStrength::X1);
        assert_eq!(TimingArc::all_arcs(nor3).len(), 6);
    }

    #[test]
    fn arcs_are_hashable_and_unique() {
        use std::collections::HashSet;
        let arcs: HashSet<TimingArc> = TimingArc::all_arcs(nand2()).into_iter().collect();
        assert_eq!(arcs.len(), 4);
    }
}
