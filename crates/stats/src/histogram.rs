//! Uniform-bin histograms for empirical densities.
//!
//! Fig. 9 of the paper compares the delay probability density obtained from baseline Monte
//! Carlo, the proposed method, and LUT interpolation.  The histogram (and the kernel density
//! estimate built on top of it in [`crate::kde`]) is how those densities are rendered.

use serde::{Deserialize, Serialize};

/// A histogram with uniformly spaced bins over `[lo, hi]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Creates an empty histogram with `bins` bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, if the bounds are not finite, or if `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "histogram bounds must be finite with lo < hi (got {lo}, {hi})"
        );
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Builds a histogram spanning the sample range with `bins` bins and fills it.
    ///
    /// The range is padded by half a bin on each side so that the extreme samples do not
    /// land exactly on the boundary.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, contains non-finite values, or `bins == 0`.
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        assert!(!samples.is_empty(), "histogram of empty sample");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "histogram samples must be finite"
        );
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Degenerate (constant or near-constant) samples need an artificial span that is
        // large enough to survive floating-point addition against the sample magnitude.
        let span = (hi - lo).max(lo.abs().max(hi.abs()) * 1e-9).max(1e-12);
        let pad = 0.5 * span / bins as f64;
        let mut h = Self::new(lo - pad, hi + pad, bins);
        h.extend(samples.iter().copied());
        h
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Lower bound of the histogram range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the histogram range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins() as f64
    }

    /// Total number of samples recorded, including out-of-range ones.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Adds a single observation.  Out-of-range values are clamped into the edge bins so
    /// that `total()` always equals the number of `add` calls.
    pub fn add(&mut self, x: f64) {
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            self.bins() - 1
        } else {
            (((x - self.lo) / self.bin_width()) as usize).min(self.bins() - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds every observation from an iterator.
    pub fn extend(&mut self, samples: impl IntoIterator<Item = f64>) {
        for x in samples {
            self.add(x);
        }
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.bins(), "bin index out of range");
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Normalized density value of bin `i` (so the histogram integrates to one).
    ///
    /// Returns `0.0` if the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    pub fn density(&self, i: usize) -> f64 {
        assert!(i < self.bins(), "bin index out of range");
        if self.total == 0 {
            return 0.0;
        }
        self.counts[i] as f64 / (self.total as f64 * self.bin_width())
    }

    /// Returns `(bin_center, density)` pairs for plotting.
    pub fn density_points(&self) -> Vec<(f64, f64)> {
        (0..self.bins())
            .map(|i| (self.bin_center(i), self.density(i)))
            .collect()
    }

    /// Empirical cumulative distribution evaluated at the right edge of each bin.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let mut acc = 0usize;
        (0..self.bins())
            .map(|i| {
                acc += self.counts[i];
                let x = self.lo + (i as f64 + 1.0) * self.bin_width();
                let p = if self.total == 0 {
                    0.0
                } else {
                    acc as f64 / self.total as f64
                };
                (x, p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_filling() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        assert_eq!(h.bins(), 10);
        assert_eq!(h.bin_width(), 1.0);
        h.extend([0.5, 1.5, 1.6, 9.9]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn out_of_range_values_clamp_to_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn density_integrates_to_one() {
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64) / 100.0).collect();
        let h = Histogram::from_samples(&samples, 25);
        let integral: f64 = (0..h.bins()).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_samples_covers_range() {
        let samples = [1.0, 2.0, 3.0];
        let h = Histogram::from_samples(&samples, 3);
        assert!(h.lo() < 1.0 && h.hi() > 3.0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn degenerate_sample_still_works() {
        let h = Histogram::from_samples(&[2.0, 2.0, 2.0], 5);
        assert_eq!(h.total(), 3);
        let nonzero: usize = h.counts().iter().sum();
        assert_eq!(nonzero, 3);
    }

    #[test]
    fn bin_centers_are_monotone() {
        let h = Histogram::new(-1.0, 1.0, 8);
        let centers: Vec<f64> = (0..8).map(|i| h.bin_center(i)).collect();
        assert!(centers.windows(2).all(|w| w[1] > w[0]));
        assert!((centers[0] - (-0.875)).abs() < 1e-12);
    }

    #[test]
    fn cdf_reaches_one() {
        let h = Histogram::from_samples(&[1.0, 2.0, 3.0, 4.0], 4);
        let cdf = h.cdf_points();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[1].1 >= w[0].1));
    }

    #[test]
    fn empty_histogram_density_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.density(0), 0.0);
        assert_eq!(h.cdf_points()[3].1, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn inverted_bounds_rejected() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }

    proptest! {
        #[test]
        fn prop_total_matches_sample_count(samples in proptest::collection::vec(-1e3f64..1e3, 1..200),
                                           bins in 1usize..40) {
            let h = Histogram::from_samples(&samples, bins);
            prop_assert_eq!(h.total(), samples.len());
            prop_assert_eq!(h.counts().iter().sum::<usize>(), samples.len());
        }

        #[test]
        fn prop_density_normalized(samples in proptest::collection::vec(-1e3f64..1e3, 2..200),
                                   bins in 1usize..40) {
            let h = Histogram::from_samples(&samples, bins);
            let integral: f64 = (0..h.bins()).map(|i| h.density(i) * h.bin_width()).sum();
            prop_assert!((integral - 1.0).abs() < 1e-6);
        }
    }
}
