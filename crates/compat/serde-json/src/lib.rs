//! Offline stand-in for the `serde_json` crate: renders the serde stand-in's [`Value`]
//! data model as JSON text and parses it back.
//!
//! Covers the surface this workspace uses — [`to_string`], [`to_string_pretty`],
//! [`from_str`], the [`Value`] re-export and the [`Error`] type.  Numbers are `f64`-backed
//! (integers up to 2^53 round-trip exactly); `NaN`/infinite numbers are rejected at
//! serialization time, matching upstream's behaviour of refusing non-finite floats.

#![forbid(unsafe_code)]

pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns an error when the value contains a non-finite number.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to human-readable JSON with two-space indentation.
///
/// # Errors
///
/// Returns an error when the value contains a non-finite number.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error describing the first syntax or shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    T::from_value(&value)
}

fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_whitespace(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if !n.is_finite() {
                return Err(Error::custom(format!(
                    "cannot serialize non-finite number {n}"
                )));
            }
            if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                // `{:?}` prints the shortest representation that round-trips through
                // `str::parse::<f64>`, including exponents where shorter.
                out.push_str(&format!("{n:?}"));
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_whitespace(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_whitespace(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_whitespace(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_whitespace(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_whitespace(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_whitespace(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_whitespace(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::custom(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_whitespace(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(Error::custom(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::custom("bad \\u escape"))?;
                        // Surrogate pairs are not needed for this workspace's ASCII-ish data.
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::custom("bad \\u escape"))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(Error::custom(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 character (multi-byte sequences arrive as valid UTF-8
                // because the input is a `&str`).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::custom("invalid UTF-8 inside string"))?;
                let c = rest.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    if *pos == start {
        return Err(Error::custom(format!("expected value at byte {start}")));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or_else(|| Error::custom(format!("invalid number at byte {start}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::String("n14".to_string())),
            ("count".to_string(), Value::Number(3.0)),
            (
                "xs".to_string(),
                Value::Array(vec![Value::Number(1.5e-12), Value::Bool(true), Value::Null]),
            ),
        ]);
        let compact = to_string(&value).unwrap();
        assert_eq!(
            compact,
            "{\"name\":\"n14\",\"count\":3,\"xs\":[1.5e-12,true,null]}"
        );
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  \"name\": \"n14\""));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v: Value = from_str(r#"{"s":"a\"b\\c\ndA","n":-2.5e3}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\\c\ndA");
        assert_eq!(v.get("n").unwrap().as_f64().unwrap(), -2500.0);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [1.0e-13, 5.0900000001e-12, 0.7342859, f64::MAX, 5e-324] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "text = {text}");
        }
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\":1,}").is_err());
        assert!(from_str::<Value>("[1 2]").is_err());
        assert!(from_str::<Value>("{\"a\":1} extra").is_err());
    }
}
