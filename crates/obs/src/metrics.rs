//! The unified metrics registry: named counters and fixed-bucket histograms with a
//! sorted, deterministically-serialized snapshot.
//!
//! Before this crate, each subsystem kept its own counter struct — the engine's
//! `DispatchSnapshot`, the farm's `FarmStats`, the kernel's `KernelStatsSnapshot`,
//! the cache's hit/miss pair — and each code path printed its own ad-hoc lines.  The
//! registry gives them one sink: subsystems feed counters/histograms as they run (or
//! fold their terminal snapshots in via [`MetricsRegistry::counter_set`]), and the
//! post-run summary renders one sorted catalogue.  Serialization order is the
//! `BTreeMap` key order, so two runs with the same counts render byte-identically.
//!
//! Histograms are fixed-bucket by design: bucket bounds are chosen by the *observer*
//! (latency decades, lane powers of two), never derived from the data, so snapshots
//! from different runs and different workers are mergeable and comparable.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Upper bounds (inclusive, in nanoseconds) for solve-latency histograms: 100 µs to
/// 10 s by decades, with an overflow bucket past the end.
pub const LATENCY_BUCKETS_NS: &[u64] = &[
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Upper bounds (inclusive) for lane-count histograms: batch occupancy, cache hit
/// lanes per lookup, quad-lane fill.
pub const LANE_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// One fixed-bucket histogram: `counts[i]` tallies observations `<= bounds[i]` (first
/// matching bucket), `overflow` the rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts, one per bound.
    pub counts: Vec<u64>,
    /// Observations above the last bound.
    pub overflow: u64,
    /// Total observations.
    pub total: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).  Fixed buckets cap what a quantile can
    /// resolve, so the true maximum is carried exactly alongside them.
    pub max: u64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            overflow: 0,
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        match self.bounds.iter().position(|&bound| value <= bound) {
            Some(bucket) => self.counts[bucket] += 1,
            None => self.overflow += 1,
        }
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`): the smallest bucket
    /// bound whose cumulative count covers `ceil(q * total)` observations, clamped to
    /// the exact tracked maximum (overflow observations resolve to `max`).  Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (bound, count) in self.bounds.iter().zip(&self.counts) {
            seen += count;
            if seen >= rank {
                return (*bound).min(self.max);
            }
        }
        self.max
    }

    /// Encodes the histogram as a compact attribute string
    /// (`total=..;sum=..;bounds=a,b;counts=x,y;overflow=z;max=m`) for trace events.
    pub fn encode(&self) -> String {
        let join = |values: &[u64]| {
            values
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "total={};sum={};bounds={};counts={};overflow={};max={}",
            self.total,
            self.sum,
            join(&self.bounds),
            join(&self.counts),
            self.overflow,
            self.max,
        )
    }

    /// Decodes [`Histogram::encode`] output; `None` on any malformed field.
    pub fn decode(text: &str) -> Option<Self> {
        let mut fields: BTreeMap<&str, &str> = BTreeMap::new();
        for part in text.split(';') {
            let (key, value) = part.split_once('=')?;
            fields.insert(key, value);
        }
        let list = |key: &str| -> Option<Vec<u64>> {
            let raw = *fields.get(key)?;
            if raw.is_empty() {
                return Some(Vec::new());
            }
            raw.split(',').map(|v| v.parse::<u64>().ok()).collect()
        };
        let scalar = |key: &str| -> Option<u64> { fields.get(key)?.parse::<u64>().ok() };
        let histogram = Self {
            bounds: list("bounds")?,
            counts: list("counts")?,
            overflow: scalar("overflow")?,
            total: scalar("total")?,
            sum: scalar("sum")?,
            // Traces written before `max` existed decode with max = 0; quantiles on
            // such histograms fall back to bucket bounds alone.
            max: match fields.get("max") {
                Some(raw) => raw.parse::<u64>().ok()?,
                None => 0,
            },
        };
        (histogram.bounds.len() == histogram.counts.len()).then_some(histogram)
    }
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The shared registry.  Clones share one store; all methods are lock-per-call and
/// fine at batch granularity (never called per lane).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Registry>>,
}

/// A point-in-time copy of the registry, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)`, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)`, ascending by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_inner<T>(&self, f: impl FnOnce(&mut Registry) -> T) -> T {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        f(&mut inner)
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.with_inner(|registry| {
            *registry.counters.entry(name.to_string()).or_insert(0) += delta;
        });
    }

    /// Overwrites the named counter — how terminal snapshots (`DispatchSnapshot`,
    /// `FarmStats`, kernel stats) are folded in at end of run without double counting.
    pub fn counter_set(&self, name: &str, value: u64) {
        self.with_inner(|registry| {
            registry.counters.insert(name.to_string(), value);
        });
    }

    /// Records one observation into the named fixed-bucket histogram, creating it
    /// with `bounds` on first use (later calls keep the original bounds).
    pub fn observe(&self, name: &str, value: u64, bounds: &[u64]) {
        self.with_inner(|registry| {
            registry
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Histogram::new(bounds))
                .observe(value);
        });
    }

    /// The sorted, deterministic snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with_inner(|registry| MetricsSnapshot {
            counters: registry
                .counters
                .iter()
                .map(|(name, value)| (name.clone(), *value))
                .collect(),
            histograms: registry
                .histograms
                .iter()
                .map(|(name, histogram)| (name.clone(), histogram.clone()))
                .collect(),
        })
    }
}

impl MetricsSnapshot {
    /// Renders the summary block printed after a run: one `  name = value` line per
    /// counter, one compact line per histogram, sorted, deterministic.
    pub fn render(&self) -> String {
        let mut out = format!(
            "metrics: {} counter(s), {} histogram(s)\n",
            self.counters.len(),
            self.histograms.len()
        );
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name} = {value}\n"));
        }
        for (name, histogram) in &self.histograms {
            let buckets: Vec<String> = histogram
                .bounds
                .iter()
                .zip(&histogram.counts)
                .map(|(bound, count)| format!("le{bound}:{count}"))
                .collect();
            out.push_str(&format!(
                "  {name} ~ total={} sum={} p50={} p95={} max={} [{} inf:{}]\n",
                histogram.total,
                histogram.sum,
                histogram.quantile(0.50),
                histogram.quantile(0.95),
                histogram.max,
                buckets.join(" "),
                histogram.overflow,
            ));
        }
        out
    }

    /// Flattens the snapshot into `(name, value-string)` attribute pairs for the
    /// end-of-run `metrics` trace event `slic profile` reads back.
    pub fn attrs(&self) -> Vec<(String, String)> {
        let mut attrs: Vec<(String, String)> = self
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), value.to_string()))
            .collect();
        attrs.extend(
            self.histograms
                .iter()
                .map(|(name, histogram)| (name.clone(), histogram.encode())),
        );
        attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshots_sort_by_name() {
        let metrics = MetricsRegistry::new();
        metrics.counter_add("z.last", 2);
        metrics.counter_add("a.first", 1);
        metrics.counter_add("z.last", 3);
        metrics.counter_set("m.pinned", 40);
        metrics.counter_set("m.pinned", 41);
        let snapshot = metrics.snapshot();
        assert_eq!(
            snapshot.counters,
            vec![
                ("a.first".to_string(), 1),
                ("m.pinned".to_string(), 41),
                ("z.last".to_string(), 5),
            ]
        );
    }

    #[test]
    fn histograms_bucket_by_inclusive_upper_bound() {
        let metrics = MetricsRegistry::new();
        for value in [1, 2, 3, 8, 9, 1000] {
            metrics.observe("lanes", value, &[2, 8]);
        }
        let snapshot = metrics.snapshot();
        let (_, histogram) = &snapshot.histograms[0];
        assert_eq!(histogram.counts, vec![2, 2]);
        assert_eq!(histogram.overflow, 2);
        assert_eq!(histogram.total, 6);
        assert_eq!(histogram.sum, 1023);
    }

    #[test]
    fn histogram_encoding_round_trips() {
        let metrics = MetricsRegistry::new();
        for value in [5, 50, 500] {
            metrics.observe("latency", value, &[10, 100]);
        }
        let snapshot = metrics.snapshot();
        let (_, histogram) = &snapshot.histograms[0];
        let decoded = Histogram::decode(&histogram.encode()).expect("round trip");
        assert_eq!(&decoded, histogram);
        assert_eq!(Histogram::decode("gibberish"), None);
        assert_eq!(
            Histogram::decode("total=1;sum=2;bounds=1,2;counts=1;overflow=0"),
            None
        );
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let metrics = MetricsRegistry::new();
        metrics.counter_add("b", 2);
        metrics.counter_add("a", 1);
        metrics.observe("h", 3, &[4]);
        let first = metrics.snapshot().render();
        let second = metrics.snapshot().render();
        assert_eq!(first, second);
        let a = first.find("  a = 1").expect("a rendered");
        let b = first.find("  b = 2").expect("b rendered");
        assert!(a < b, "sorted order: {first}");
        assert!(
            first.contains("h ~ total=1 sum=3 p50=3 p95=3 max=3 [le4:1 inf:0]"),
            "{first}"
        );
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds_clamped_by_max() {
        let metrics = MetricsRegistry::new();
        // 9 observations in le10, 1 in overflow.
        for value in [1, 2, 3, 4, 5, 6, 7, 8, 9] {
            metrics.observe("lat", value, &[10, 100]);
        }
        metrics.observe("lat", 250, &[10, 100]);
        let snapshot = metrics.snapshot();
        let (_, histogram) = &snapshot.histograms[0];
        assert_eq!(histogram.max, 250);
        assert_eq!(histogram.quantile(0.50), 10); // bucket bound, not the raw value
        assert_eq!(histogram.quantile(0.90), 10);
        assert_eq!(histogram.quantile(0.95), 250); // overflow resolves to exact max
        assert_eq!(histogram.quantile(1.0), 250);
        assert_eq!(Histogram::new(&[10]).quantile(0.5), 0);
    }

    #[test]
    fn quantile_never_exceeds_tracked_max() {
        let metrics = MetricsRegistry::new();
        metrics.observe("one", 3, &[1_000_000]);
        let snapshot = metrics.snapshot();
        let (_, histogram) = &snapshot.histograms[0];
        // A lone small value must not be reported as its huge bucket bound.
        assert_eq!(histogram.quantile(0.5), 3);
        assert_eq!(histogram.quantile(0.99), 3);
    }

    #[test]
    fn decode_tolerates_missing_max_but_rejects_malformed_max() {
        let legacy = "total=3;sum=555;bounds=10,100;counts=1,1;overflow=1";
        let decoded = Histogram::decode(legacy).expect("legacy encoding decodes");
        assert_eq!(decoded.max, 0);
        assert_eq!(decoded.quantile(1.0), 0); // max unknown: clamp floors at zero
        assert_eq!(
            Histogram::decode("total=1;sum=2;bounds=1;counts=1;overflow=0;max=oops"),
            None
        );
    }

    #[test]
    fn clones_share_one_store() {
        let metrics = MetricsRegistry::new();
        let clone = metrics.clone();
        clone.counter_add("shared", 7);
        assert_eq!(metrics.snapshot().counters, vec![("shared".to_string(), 7)]);
    }
}
