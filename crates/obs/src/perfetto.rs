//! Chrome trace-event export: `slic profile trace.jsonl --format chrome`.
//!
//! Emits the JSON object format (`{"traceEvents":[...]}`) that ui.perfetto.dev and
//! `chrome://tracing` ingest directly.  Spans become `ph:"X"` complete events and
//! trace events become `ph:"i"` instants, both on thread tracks keyed by the
//! recorder's stable small-int thread ids — so a farmed run's dispatcher and worker
//! threads land on separate, consistently-named tracks, and span nesting falls out
//! of `ts`/`dur` containment exactly as the recorder emitted it.
//!
//! Timestamps: trace-event `ts`/`dur` are microseconds.  The recorder's nanosecond
//! values are rendered as fixed-point `micros.nnn` strings via integer math — no
//! float formatting, so export is deterministic down to the byte.

use crate::profile::{ParsedTrace, RecordKind};
use crate::trace::escape_json;
use std::fmt::Write as _;

/// Renders a parsed trace as Chrome trace-event JSON.
///
/// Output is deterministic: one `ph:"M"` thread-name metadata row per thread id
/// (ascending), then every record in file order.  Span ids and parent ids are
/// preserved under `args` so the original correlation survives the export.
pub fn render_chrome(parsed: &ParsedTrace) -> String {
    let mut threads: Vec<u64> = parsed.records.iter().map(|r| r.thread).collect();
    threads.sort_unstable();
    threads.dedup();

    let mut out = String::with_capacity(parsed.records.len() * 128 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for thread in &threads {
        push_separator(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{thread},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"thread {thread}\"}}}}"
        );
    }
    for record in &parsed.records {
        push_separator(&mut out, &mut first);
        match record.kind {
            RecordKind::Span => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"cat\":\"slic\",\
                     \"ts\":{},\"dur\":{},\"args\":{{",
                    record.thread,
                    escape_json(&record.name),
                    micros(record.start_ns),
                    micros(record.dur_ns),
                );
            }
            RecordKind::Event => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\
                     \"cat\":\"slic\",\"ts\":{},\"args\":{{",
                    record.thread,
                    escape_json(&record.name),
                    micros(record.start_ns),
                );
            }
        }
        let _ = write!(out, "\"span_id\":\"{}\"", record.id);
        if let Some(parent) = record.parent {
            let _ = write!(out, ",\"parent_id\":\"{parent}\"");
        }
        for (key, value) in &record.attrs {
            let _ = write!(out, ",\"{}\":\"{}\"", escape_json(key), escape_json(value));
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

fn push_separator(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Nanoseconds as a fixed-point microsecond literal (`123.456`), integer math only.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{parse_json, parse_trace, Json};

    fn sample_trace() -> ParsedTrace {
        let text = concat!(
            "{\"type\":\"span\",\"id\":1,\"thread\":0,\"name\":\"characterize\",\"start_ns\":1000,\"dur_ns\":9000,\"attrs\":{\"units\":\"2\"}}\n",
            "{\"type\":\"span\",\"id\":2,\"parent\":1,\"thread\":1,\"name\":\"unit\",\"start_ns\":2000,\"dur_ns\":3000,\"attrs\":{\"cell\":\"INV_X1\"}}\n",
            "{\"type\":\"event\",\"id\":3,\"parent\":1,\"thread\":0,\"name\":\"progress\",\"at_ns\":4500,\"attrs\":{\"units_done\":\"1\"}}\n",
        );
        let parsed = parse_trace(text);
        assert_eq!(parsed.dropped, 0);
        parsed
    }

    fn events(rendered: &str) -> Vec<Json> {
        let doc = parse_json(rendered).expect("chrome export is valid JSON");
        match doc.get("traceEvents") {
            Some(Json::Arr(events)) => events.clone(),
            other => panic!("traceEvents array expected, got {other:?}"),
        }
    }

    #[test]
    fn export_round_trips_as_json_with_thread_tracks_and_nesting() {
        let rendered = render_chrome(&sample_trace());
        let events = events(&rendered);
        // 2 thread metadata rows + 2 spans + 1 instant.
        assert_eq!(events.len(), 5);

        let metadata: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(metadata.len(), 2);
        assert_eq!(
            metadata[0]
                .get("args")
                .unwrap()
                .get("name")
                .unwrap()
                .as_str(),
            Some("thread 0")
        );

        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        let root = spans[0];
        let child = spans[1];
        assert_eq!(root.get("tid").unwrap().as_u64(), Some(0));
        assert_eq!(child.get("tid").unwrap().as_u64(), Some(1));
        // Nesting preserved: the child's [ts, ts+dur] window sits inside the root's.
        let window = |span: &Json| -> (f64, f64) {
            let ts = match span.get("ts") {
                Some(Json::Num(ts)) => *ts,
                other => panic!("numeric ts expected, got {other:?}"),
            };
            let dur = match span.get("dur") {
                Some(Json::Num(dur)) => *dur,
                other => panic!("numeric dur expected, got {other:?}"),
            };
            (ts, ts + dur)
        };
        let (root_start, root_end) = window(root);
        let (child_start, child_end) = window(child);
        assert!(root_start <= child_start && child_end <= root_end);
        // Parent correlation survives under args.
        assert_eq!(
            child
                .get("args")
                .unwrap()
                .get("parent_id")
                .unwrap()
                .as_str(),
            Some("1")
        );

        let instant = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .expect("instant event");
        assert_eq!(instant.get("name").unwrap().as_str(), Some("progress"));
        assert_eq!(
            instant
                .get("args")
                .unwrap()
                .get("units_done")
                .unwrap()
                .as_str(),
            Some("1")
        );
    }

    #[test]
    fn timestamps_are_fixed_point_microseconds() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(4500), "4.500");
        assert_eq!(micros(1_234_567), "1234.567");
        let rendered = render_chrome(&sample_trace());
        assert!(rendered.contains("\"ts\":1.000"), "{rendered}");
        assert!(rendered.contains("\"dur\":9.000"), "{rendered}");
        // Determinism down to the byte.
        assert_eq!(rendered, render_chrome(&sample_trace()));
    }
}
