//! Learning the Gaussian parameter prior from historical characterizations (Eq. 7).

use crate::history::{HistoricalDatabase, TimingMetric};
use serde::{Deserialize, Serialize};
use slic_linalg::{LinalgError, Vector};
use slic_stats::MultivariateGaussian;
use slic_timing_model::{GaussianPenalty, TimingParams, PARAM_COUNT};
use std::error::Error;
use std::fmt;

/// Errors produced while learning a prior.
#[derive(Debug)]
#[non_exhaustive]
pub enum PriorError {
    /// The database holds no records matching the requested metric / cell-kind filter.
    NoMatchingRecords {
        /// The metric requested.
        metric: TimingMetric,
        /// The cell-kind filter requested, if any.
        cell_kind: Option<String>,
    },
    /// The sample covariance could not be made positive definite.
    Linalg(LinalgError),
}

impl fmt::Display for PriorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriorError::NoMatchingRecords { metric, cell_kind } => write!(
                f,
                "no historical records for metric {metric} (cell kind filter: {cell_kind:?})"
            ),
            PriorError::Linalg(e) => write!(f, "prior covariance is degenerate: {e}"),
        }
    }
}

impl Error for PriorError {}

impl From<LinalgError> for PriorError {
    fn from(e: LinalgError) -> Self {
        PriorError::Linalg(e)
    }
}

/// A learned parameter prior `µ_P ~ N(µ0, Σ0)` for one timing metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterPrior {
    metric: TimingMetric,
    cell_kind: Option<String>,
    distribution: MultivariateGaussian,
    source_record_count: usize,
}

impl ParameterPrior {
    /// The metric this prior applies to.
    pub fn metric(&self) -> TimingMetric {
        self.metric
    }

    /// The cell-kind filter used when learning, if any.
    pub fn cell_kind(&self) -> Option<&str> {
        self.cell_kind.as_deref()
    }

    /// The learned multivariate normal over `[kd, Cpar, V', α]`.
    pub fn distribution(&self) -> &MultivariateGaussian {
        &self.distribution
    }

    /// Number of historical records the prior was learned from.
    pub fn source_record_count(&self) -> usize {
        self.source_record_count
    }

    /// The prior mean as compact-model parameters — the best guess before any new-technology
    /// simulation is run.
    pub fn mean_params(&self) -> TimingParams {
        TimingParams::from_vector(self.distribution.mean())
    }

    /// Converts the prior into the penalty term consumed by the MAP solver.
    ///
    /// # Panics
    ///
    /// Panics only if the stored covariance lost positive definiteness, which construction
    /// prevents.
    pub fn to_penalty(&self) -> GaussianPenalty {
        GaussianPenalty::from_covariance(
            self.distribution.mean().clone(),
            self.distribution.covariance(),
        )
        .expect("prior covariance is positive definite by construction")
    }

    /// Returns a copy with the covariance inflated (>1) or sharpened (<1) by `factor` —
    /// the knob used in the prior-strength ablation.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn with_covariance_scaled(&self, factor: f64) -> Self {
        Self {
            distribution: self.distribution.scaled_covariance(factor),
            cell_kind: self.cell_kind.clone(),
            ..*self
        }
    }
}

/// Builder that turns historical records into a [`ParameterPrior`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorBuilder {
    /// Diagonal jitter added to the sample covariance (keeps few-record priors usable).
    pub regularization: f64,
    /// Extra multiplicative inflation applied to the covariance.  A value slightly above 1
    /// guards against the historical spread under-representing the new node (the
    /// bias–variance trade-off of Section IV).
    pub covariance_inflation: f64,
    /// Minimum per-parameter standard deviation, in model units, enforced on the diagonal.
    pub min_std_dev: f64,
}

impl PriorBuilder {
    /// Creates a builder with the default settings used throughout the experiments.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learns a prior for `metric` from `db`, optionally restricted to one cell kind
    /// (e.g. `Some("NAND2")`).  Passing `None` pools every cell — the paper's observation is
    /// that parameters are similar across *both* cells and technologies, and the pooled
    /// prior is what makes brand-new cell types characterizable.
    ///
    /// # Errors
    ///
    /// Returns [`PriorError::NoMatchingRecords`] if the filter selects nothing, or a
    /// [`PriorError::Linalg`] if the covariance cannot be regularized into positive
    /// definiteness.
    pub fn build(
        &self,
        db: &HistoricalDatabase,
        metric: TimingMetric,
        cell_kind: Option<&str>,
    ) -> Result<ParameterPrior, PriorError> {
        let records = db.select(metric, cell_kind);
        if records.is_empty() {
            return Err(PriorError::NoMatchingRecords {
                metric,
                cell_kind: cell_kind.map(str::to_string),
            });
        }
        let samples: Vec<Vector> = records.iter().map(|r| r.params.to_vector()).collect();

        // Sample mean and covariance with jitter.
        let base = MultivariateGaussian::fit(&samples, self.regularization)?;
        // Enforce the minimum spread and the inflation factor on the covariance.
        let mut cov = base.covariance().scale(self.covariance_inflation);
        for i in 0..PARAM_COUNT {
            let floor = self.min_std_dev * self.min_std_dev;
            if cov[(i, i)] < floor {
                cov[(i, i)] = floor;
            }
        }
        let distribution = MultivariateGaussian::new(base.mean().clone(), cov)?;
        Ok(ParameterPrior {
            metric,
            cell_kind: cell_kind.map(str::to_string),
            distribution,
            source_record_count: records.len(),
        })
    }
}

impl Default for PriorBuilder {
    fn default() -> Self {
        Self {
            regularization: 1e-6,
            covariance_inflation: 1.5,
            min_std_dev: 0.01,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoricalRecord;
    use proptest::prelude::*;

    fn db_with_spread() -> HistoricalDatabase {
        // Six historical technologies, INV/NAND2/NOR2 each, Table I-like values.
        let techs = ["n45", "n32", "n28", "n20", "n16", "n14"];
        let mut db = HistoricalDatabase::new();
        for (i, tech) in techs.iter().enumerate() {
            let drift = i as f64 * 0.004;
            for (cell, kd, cpar, alpha) in [
                ("INV_X1", 0.389, 0.951, 0.092),
                ("NAND2_X1", 0.372, 1.328, 0.034),
                ("NOR2_X1", 0.356, 1.186, 0.102),
            ] {
                db.push(HistoricalRecord::new(
                    *tech,
                    45 - 5 * i as u32,
                    cell,
                    format!("{cell}/A0/FALL"),
                    TimingMetric::Delay,
                    TimingParams::new(kd + drift, cpar + 10.0 * drift, -0.266 + drift, alpha),
                    1.5,
                    Vec::new(),
                ));
                db.push(HistoricalRecord::new(
                    *tech,
                    45 - 5 * i as u32,
                    cell,
                    format!("{cell}/A0/RISE"),
                    TimingMetric::OutputSlew,
                    TimingParams::new(1.0 + drift, 1.5 + 10.0 * drift, -0.15, 0.25),
                    2.0,
                    Vec::new(),
                ));
            }
        }
        db
    }

    #[test]
    fn pooled_prior_mean_is_near_the_record_average() {
        let db = db_with_spread();
        let prior = PriorBuilder::new()
            .build(&db, TimingMetric::Delay, None)
            .unwrap();
        let mean = prior.mean_params();
        assert!((mean.kd - 0.38).abs() < 0.03, "kd mean = {}", mean.kd);
        assert!((mean.v_prime + 0.26).abs() < 0.03);
        assert_eq!(prior.source_record_count(), 18);
        assert_eq!(prior.metric(), TimingMetric::Delay);
        assert!(prior.cell_kind().is_none());
    }

    #[test]
    fn cell_filtered_prior_is_tighter_than_pooled() {
        let db = db_with_spread();
        let builder = PriorBuilder::new();
        let pooled = builder.build(&db, TimingMetric::Delay, None).unwrap();
        let filtered = builder
            .build(&db, TimingMetric::Delay, Some("NAND2"))
            .unwrap();
        // Cpar differs a lot between cells, so restricting to one kind shrinks its variance.
        let pooled_var = pooled.distribution().covariance()[(1, 1)];
        let filtered_var = filtered.distribution().covariance()[(1, 1)];
        assert!(filtered_var < pooled_var);
        assert_eq!(filtered.cell_kind(), Some("NAND2"));
    }

    #[test]
    fn slew_prior_differs_from_delay_prior() {
        let db = db_with_spread();
        let builder = PriorBuilder::new();
        let delay = builder.build(&db, TimingMetric::Delay, None).unwrap();
        let slew = builder.build(&db, TimingMetric::OutputSlew, None).unwrap();
        assert!(slew.mean_params().kd > 2.0 * delay.mean_params().kd);
    }

    #[test]
    fn missing_records_are_an_error() {
        let db = HistoricalDatabase::new();
        let err = PriorBuilder::new()
            .build(&db, TimingMetric::Delay, None)
            .unwrap_err();
        assert!(matches!(err, PriorError::NoMatchingRecords { .. }));
        assert!(err.to_string().contains("no historical records"));
        let db = db_with_spread();
        let err = PriorBuilder::new()
            .build(&db, TimingMetric::Delay, Some("XOR2"))
            .unwrap_err();
        assert!(matches!(err, PriorError::NoMatchingRecords { .. }));
    }

    #[test]
    fn single_record_prior_is_usable() {
        let mut db = HistoricalDatabase::new();
        db.push(HistoricalRecord::new(
            "only",
            14,
            "INV_X1",
            "INV_X1/A0/FALL",
            TimingMetric::Delay,
            TimingParams::new(0.39, 0.95, -0.27, 0.09),
            1.0,
            Vec::new(),
        ));
        let prior = PriorBuilder::new()
            .build(&db, TimingMetric::Delay, None)
            .unwrap();
        // The covariance collapses to the regularization + floor, but stays valid.
        assert!(prior.distribution().covariance()[(0, 0)] > 0.0);
        let penalty = prior.to_penalty();
        assert_eq!(penalty.dim(), PARAM_COUNT);
    }

    #[test]
    fn covariance_scaling_ablation_knob() {
        let db = db_with_spread();
        let prior = PriorBuilder::new()
            .build(&db, TimingMetric::Delay, None)
            .unwrap();
        let broad = prior.with_covariance_scaled(4.0);
        assert!(
            broad.distribution().covariance()[(0, 0)]
                > 3.9 * prior.distribution().covariance()[(0, 0)]
        );
        assert_eq!(broad.mean_params(), prior.mean_params());
    }

    #[test]
    fn min_std_dev_floor_is_enforced() {
        let db = db_with_spread();
        let builder = PriorBuilder {
            min_std_dev: 0.2,
            ..PriorBuilder::new()
        };
        let prior = builder.build(&db, TimingMetric::Delay, None).unwrap();
        for i in 0..PARAM_COUNT {
            assert!(prior.distribution().covariance()[(i, i)] >= 0.2 * 0.2 - 1e-12);
        }
    }

    proptest! {
        #[test]
        fn prop_penalty_is_zero_at_prior_mean(inflation in 0.5f64..4.0) {
            let db = db_with_spread();
            let builder = PriorBuilder { covariance_inflation: inflation, ..PriorBuilder::new() };
            let prior = builder.build(&db, TimingMetric::Delay, None).unwrap();
            let penalty = prior.to_penalty();
            prop_assert!(penalty.cost(prior.distribution().mean()) < 1e-15);
        }
    }
}
