//! Learning the per-input-condition model precision `β(ξ)` from historical residuals (Eq. 9).
//!
//! The compact model is not equally trustworthy everywhere: near the supply floor the delay
//! becomes strongly nonlinear in `Vdd` and the four-parameter form absorbs it less well than
//! at nominal supply.  The paper captures this as a *precision* (inverse variance of the
//! relative model residual across historical technologies) per input condition; high-β
//! conditions get weighted more strongly in the MAP objective.

use crate::history::{HistoricalDatabase, TimingMetric};
use serde::{Deserialize, Serialize};
use slic_spice::{InputPoint, InputSpace};
use slic_stats::moments;

/// Configuration for precision learning and lookup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionConfig {
    /// Lower clamp on learned precisions (guards against a single lucky condition where all
    /// technologies happened to agree, which would otherwise produce a near-infinite β).
    pub beta_min: f64,
    /// Upper clamp on learned precisions.
    pub beta_max: f64,
    /// Precision assumed when no historical residuals are available at all (equivalent to a
    /// ~5 % relative model uncertainty).
    pub beta_default: f64,
}

impl Default for PrecisionConfig {
    fn default() -> Self {
        Self {
            beta_min: 1e2, // never trust the model better than ~10% ... 1/sqrt(1e2)
            beta_max: 1e6, // ...nor worse than 0.1 %
            beta_default: 400.0,
        }
    }
}

/// One learned precision anchor: a reference input condition and the β learned there.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PrecisionAnchor {
    point: InputPoint,
    beta: f64,
}

/// The learned precision field `β(ξ)`.
///
/// Lookup interpolates between the reference conditions with inverse-distance weighting in
/// the normalized input space; queries far from every anchor fall back to the nearest one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecisionModel {
    metric: TimingMetric,
    anchors: Vec<PrecisionAnchor>,
    config: PrecisionConfig,
    /// Normalization scales for (sin, cload, vdd) distances.
    scales: [f64; 3],
}

impl PrecisionModel {
    /// Learns the precision field for `metric` from the residuals stored in `db`.
    ///
    /// Residuals are grouped by input condition across technologies; Eq. (9) — the inverse
    /// variance of the absolute relative residual — is evaluated per group.  Conditions seen
    /// in fewer than two technologies cannot define a variance and are skipped.
    ///
    /// `space` provides the normalization scales used by the lookup distance metric.
    pub fn learn(
        db: &HistoricalDatabase,
        metric: TimingMetric,
        space: &InputSpace,
        config: PrecisionConfig,
    ) -> Self {
        // Group residuals by (quantized) input condition.
        let mut groups: Vec<(InputPoint, Vec<f64>)> = Vec::new();
        for record in db.select(metric, None) {
            for residual in &record.residuals {
                let entry = groups
                    .iter_mut()
                    .find(|(p, _)| same_condition(p, &residual.point));
                match entry {
                    Some((_, values)) => values.push(residual.relative_residual),
                    None => groups.push((residual.point, vec![residual.relative_residual])),
                }
            }
        }

        let anchors: Vec<PrecisionAnchor> = groups
            .into_iter()
            .filter(|(_, residuals)| residuals.len() >= 2)
            .map(|(point, residuals)| {
                let beta = eq9_precision(&residuals).clamp(config.beta_min, config.beta_max);
                PrecisionAnchor { point, beta }
            })
            .collect();

        let (sin_lo, sin_hi) = space.sin_range();
        let (cl_lo, cl_hi) = space.cload_range();
        let (vdd_lo, vdd_hi) = space.vdd_range();
        let scales = [
            (sin_hi.value() - sin_lo.value()).max(1e-30),
            (cl_hi.value() - cl_lo.value()).max(1e-30),
            (vdd_hi.value() - vdd_lo.value()).max(1e-30),
        ];
        Self {
            metric,
            anchors,
            config,
            scales,
        }
    }

    /// Builds a flat (condition-independent) precision field — the fallback when no
    /// historical residuals are available, and a useful ablation reference.
    pub fn flat(metric: TimingMetric, beta: f64, config: PrecisionConfig) -> Self {
        Self {
            metric,
            anchors: Vec::new(),
            config: PrecisionConfig {
                beta_default: beta.clamp(config.beta_min, config.beta_max),
                ..config
            },
            scales: [1.0, 1.0, 1.0],
        }
    }

    /// The metric this field applies to.
    pub fn metric(&self) -> TimingMetric {
        self.metric
    }

    /// Number of reference conditions with a learned precision.
    pub fn anchor_count(&self) -> usize {
        self.anchors.len()
    }

    /// The learned precision at an arbitrary input condition.
    pub fn beta(&self, point: &InputPoint) -> f64 {
        if self.anchors.is_empty() {
            return self.config.beta_default;
        }
        // Inverse-distance-squared weighting over the anchors (exact at anchor positions).
        let mut weight_sum = 0.0;
        let mut weighted_beta = 0.0;
        for anchor in &self.anchors {
            let d2 = self.normalized_distance_squared(point, &anchor.point);
            if d2 < 1e-16 {
                return anchor.beta;
            }
            let w = 1.0 / d2;
            weight_sum += w;
            weighted_beta += w * anchor.beta;
        }
        (weighted_beta / weight_sum).clamp(self.config.beta_min, self.config.beta_max)
    }

    /// Equivalent relative model uncertainty `1/√β` at a condition, as a fraction.
    pub fn relative_uncertainty(&self, point: &InputPoint) -> f64 {
        1.0 / self.beta(point).sqrt()
    }

    fn normalized_distance_squared(&self, a: &InputPoint, b: &InputPoint) -> f64 {
        let ds = (a.sin.value() - b.sin.value()) / self.scales[0];
        let dc = (a.cload.value() - b.cload.value()) / self.scales[1];
        let dv = (a.vdd.value() - b.vdd.value()) / self.scales[2];
        ds * ds + dc * dc + dv * dv
    }
}

/// Eq. (9): `β = 1 / ( mean(r²) − mean(|r|)² )`, the inverse variance of the absolute
/// relative residual across technologies.  Returns `f64::INFINITY` for degenerate inputs
/// (caller clamps).
fn eq9_precision(relative_residuals: &[f64]) -> f64 {
    let abs: Vec<f64> = relative_residuals.iter().map(|r| r.abs()).collect();
    let mean_sq = moments::mean(&relative_residuals.iter().map(|r| r * r).collect::<Vec<_>>());
    let mean_abs = moments::mean(&abs);
    let variance = mean_sq - mean_abs * mean_abs;
    if variance <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / variance
    }
}

/// Two input points describe the same reference condition if they agree to within one part
/// in a thousand on every axis.
fn same_condition(a: &InputPoint, b: &InputPoint) -> bool {
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-3 * x.abs().max(y.abs()).max(1e-30);
    close(a.sin.value(), b.sin.value())
        && close(a.cload.value(), b.cload.value())
        && close(a.vdd.value(), b.vdd.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{ConditionResidual, HistoricalRecord};
    use slic_timing_model::TimingParams;
    use slic_units::{Farads, Seconds, Volts};

    fn point(sin_ps: f64, cload_ff: f64, vdd: f64) -> InputPoint {
        InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(cload_ff),
            Volts(vdd),
        )
    }

    fn space() -> InputSpace {
        InputSpace::paper_space((Volts(0.65), Volts(1.0)))
    }

    /// Database where the model error is small (±1 %) at high Vdd and large (±8 %) at low
    /// Vdd, consistently across technologies.
    fn db_with_vdd_trend() -> HistoricalDatabase {
        let mut db = HistoricalDatabase::new();
        let conditions = [point(5.0, 2.0, 0.95), point(5.0, 2.0, 0.68)];
        for (i, tech) in ["n45", "n32", "n28", "n20"].iter().enumerate() {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            let residuals = vec![
                ConditionResidual {
                    point: conditions[0],
                    relative_residual: sign * 0.01 * (1.0 + 0.3 * i as f64),
                },
                ConditionResidual {
                    point: conditions[1],
                    relative_residual: sign * 0.08 * (1.0 + 0.3 * i as f64),
                },
            ];
            db.push(HistoricalRecord::new(
                *tech,
                45,
                "INV_X1",
                "INV_X1/A0/FALL",
                TimingMetric::Delay,
                TimingParams::new(0.39, 1.0, -0.26, 0.09),
                1.0,
                residuals,
            ));
        }
        db
    }

    #[test]
    fn eq9_matches_hand_computation() {
        // residuals ±0.02: |r| = 0.02 everywhere -> variance of |r| = 0 -> infinite precision.
        assert!(eq9_precision(&[0.02, -0.02, 0.02]).is_infinite());
        // Two distinct magnitudes.
        let beta = eq9_precision(&[0.01, 0.03]);
        // mean(r^2) = (1e-4 + 9e-4)/2 = 5e-4, mean(|r|)^2 = (0.02)^2 = 4e-4, var = 1e-4.
        assert!((beta - 1.0 / 1e-4).abs() / beta < 1e-9);
    }

    #[test]
    fn high_vdd_conditions_get_higher_precision() {
        let model = PrecisionModel::learn(
            &db_with_vdd_trend(),
            TimingMetric::Delay,
            &space(),
            PrecisionConfig::default(),
        );
        assert_eq!(model.anchor_count(), 2);
        let beta_high = model.beta(&point(5.0, 2.0, 0.95));
        let beta_low = model.beta(&point(5.0, 2.0, 0.68));
        assert!(
            beta_high > 5.0 * beta_low,
            "high-Vdd beta {beta_high} should far exceed low-Vdd beta {beta_low}"
        );
        assert!(
            model.relative_uncertainty(&point(5.0, 2.0, 0.68))
                > model.relative_uncertainty(&point(5.0, 2.0, 0.95))
        );
    }

    #[test]
    fn interpolation_between_anchors_is_monotone_in_vdd() {
        let model = PrecisionModel::learn(
            &db_with_vdd_trend(),
            TimingMetric::Delay,
            &space(),
            PrecisionConfig::default(),
        );
        let beta_mid = model.beta(&point(5.0, 2.0, 0.8));
        let beta_low = model.beta(&point(5.0, 2.0, 0.68));
        let beta_high = model.beta(&point(5.0, 2.0, 0.95));
        assert!(beta_mid > beta_low && beta_mid < beta_high);
    }

    #[test]
    fn precisions_are_clamped() {
        let config = PrecisionConfig::default();
        let mut db = HistoricalDatabase::new();
        // Residuals identical across technologies -> infinite raw precision -> clamped to max.
        db.push(HistoricalRecord::new(
            "a",
            28,
            "INV_X1",
            "INV_X1/A0/FALL",
            TimingMetric::Delay,
            TimingParams::new(0.39, 1.0, -0.26, 0.09),
            1.0,
            vec![ConditionResidual {
                point: point(5.0, 2.0, 0.9),
                relative_residual: 0.02,
            }],
        ));
        db.push(HistoricalRecord::new(
            "b",
            28,
            "INV_X1",
            "INV_X1/A0/FALL",
            TimingMetric::Delay,
            TimingParams::new(0.40, 1.0, -0.26, 0.09),
            1.0,
            vec![ConditionResidual {
                point: point(5.0, 2.0, 0.9),
                relative_residual: -0.02,
            }],
        ));
        let model = PrecisionModel::learn(&db, TimingMetric::Delay, &space(), config);
        assert_eq!(model.anchor_count(), 1);
        assert!((model.beta(&point(5.0, 2.0, 0.9)) - config.beta_max).abs() < 1e-9);
    }

    #[test]
    fn no_residuals_falls_back_to_default() {
        let db = HistoricalDatabase::new();
        let model = PrecisionModel::learn(
            &db,
            TimingMetric::Delay,
            &space(),
            PrecisionConfig::default(),
        );
        assert_eq!(model.anchor_count(), 0);
        assert_eq!(
            model.beta(&point(5.0, 2.0, 0.8)),
            PrecisionConfig::default().beta_default
        );
    }

    #[test]
    fn single_technology_residuals_are_skipped() {
        let mut db = HistoricalDatabase::new();
        db.push(HistoricalRecord::new(
            "only",
            28,
            "INV_X1",
            "INV_X1/A0/FALL",
            TimingMetric::Delay,
            TimingParams::new(0.39, 1.0, -0.26, 0.09),
            1.0,
            vec![ConditionResidual {
                point: point(5.0, 2.0, 0.9),
                relative_residual: 0.02,
            }],
        ));
        let model = PrecisionModel::learn(
            &db,
            TimingMetric::Delay,
            &space(),
            PrecisionConfig::default(),
        );
        assert_eq!(
            model.anchor_count(),
            0,
            "cannot estimate a variance from one sample"
        );
    }

    #[test]
    fn flat_model_reports_constant_beta() {
        let model =
            PrecisionModel::flat(TimingMetric::OutputSlew, 900.0, PrecisionConfig::default());
        assert_eq!(model.metric(), TimingMetric::OutputSlew);
        assert_eq!(model.beta(&point(1.0, 0.5, 0.7)), 900.0);
        assert_eq!(model.beta(&point(14.0, 5.5, 1.0)), 900.0);
        assert!((model.relative_uncertainty(&point(5.0, 2.0, 0.8)) - 1.0 / 30.0).abs() < 1e-12);
    }
}
