//! A small token-level Rust lexer — just enough structure for the lint rules.
//!
//! In the spirit of the workspace's other hand-rolled parsers (the serde derive macro,
//! the flat-TOML reader) this does not build a syntax tree: it splits source text into
//! identifiers, literals, punctuation and comments, with a line number on every token.
//! The rules in [`crate::rules`] pattern-match over this stream.
//!
//! The lexer must never panic or loop forever, whatever bytes it is fed — it runs over
//! every file in the workspace, including fixtures that are deliberately malformed, and
//! a linter that dies on weird input is worse than no linter.  Anything it cannot
//! classify becomes a one-character [`TokenKind::Unknown`] token and scanning continues.

/// What a token is, as far as the lint rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, ...).
    Ident,
    /// An integer literal, including hex/octal/binary forms and suffixes.
    Int,
    /// A floating-point literal (`1.0`, `2e-3`, `1f64`).
    Float,
    /// A string literal: plain, raw (`r#"..."#`) or byte, escapes resolved lexically only.
    Str,
    /// A character or byte-character literal.
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character; multi-character operators arrive as a sequence.
    Punct,
    /// A `// ...` comment (text includes the slashes, excludes the newline).
    LineComment,
    /// A `/* ... */` comment, nesting honoured; may span lines.
    BlockComment,
    /// A byte the lexer cannot classify — consumed one character at a time.
    Unknown,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// `true` for the kinds the rule matcher walks (everything but comments).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// The token's single punctuation character, if it is punctuation.
    pub fn punct(&self) -> Option<char> {
        if self.kind == TokenKind::Punct {
            self.text.chars().next()
        } else {
            None
        }
    }
}

/// Lexes `source` into a flat token list.  Whitespace is dropped; everything else —
/// comments included — is kept, so suppression comments stay addressable by line.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    source: std::marker::PhantomData<&'a str>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            source: std::marker::PhantomData,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one character, keeping the line count in step.
    fn bump(&mut self) -> Option<char> {
        let ch = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if ch == '\n' {
            self.line += 1;
        }
        Some(ch)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(ch) = self.peek(0) {
            let line = self.line;
            match ch {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                'r' | 'b' if self.raw_or_byte_literal(line) => {}
                '"' => self.string_literal(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                c if c.is_ascii_punctuation() => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
                c => {
                    self.bump();
                    self.push(TokenKind::Unknown, c.to_string(), line);
                }
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(ch) = self.peek(0) {
            if ch == '\n' {
                break;
            }
            text.push(ch);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(ch) = self.peek(0) {
            if ch == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if ch == '*' && self.peek(1) == Some('/') {
                depth = depth.saturating_sub(1);
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(ch);
                self.bump();
            }
        }
        // An unterminated comment swallows the rest of the file — same as rustc.
        self.push(TokenKind::BlockComment, text, line);
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br##"..."##` and `b'x'`.  Returns `false`
    /// (consuming nothing) when the `r`/`b` starts a plain identifier instead.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let mut ahead = 1;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        if self.peek(0) == Some('b') && self.peek(1) == Some('\'') {
            // Byte character: consume the `b`, then lex like a char literal.
            self.bump();
            self.char_or_lifetime(line);
            return true;
        }
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some('"') {
            return false;
        }
        let raw = ahead + hashes > 1 || self.peek(0) == Some('r');
        let mut text = String::new();
        for _ in 0..ahead + hashes + 1 {
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        // Inside a raw string escapes are inert; a plain `b"..."` honours them.
        let escapes = !raw;
        self.string_body(&mut text, hashes, escapes);
        self.push(TokenKind::Str, text, line);
        true
    }

    fn string_literal(&mut self, line: u32) {
        let mut text = String::new();
        if let Some(c) = self.bump() {
            text.push(c);
        }
        self.string_body(&mut text, 0, true);
        self.push(TokenKind::Str, text, line);
    }

    /// Consumes up to (and including) the closing quote plus `hashes` trailing `#`s.
    fn string_body(&mut self, text: &mut String, hashes: usize, escapes: bool) {
        while let Some(ch) = self.peek(0) {
            if escapes && ch == '\\' {
                text.push(ch);
                self.bump();
                if let Some(next) = self.bump() {
                    text.push(next);
                }
                continue;
            }
            if ch == '"' {
                let mut matched = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != Some('#') {
                        matched = false;
                        break;
                    }
                }
                if matched {
                    for _ in 0..=hashes {
                        if let Some(c) = self.bump() {
                            text.push(c);
                        }
                    }
                    return;
                }
            }
            text.push(ch);
            self.bump();
        }
        // Unterminated string: the token runs to end of file.
    }

    /// Distinguishes `'a'` / `'\n'` (char literals) from `'a` / `'static` (lifetimes).
    fn char_or_lifetime(&mut self, line: u32) {
        let mut text = String::new();
        if let Some(c) = self.bump() {
            text.push(c);
        }
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal.
                text.push('\\');
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
                if self.peek(0) == Some('\'') {
                    text.push('\'');
                    self.bump();
                }
                self.push(TokenKind::Char, text, line);
            }
            Some(c) if self.peek(1) == Some('\'') && c != '\'' => {
                // A single-character literal of any punctuation or space: `'"'`, `'/'`,
                // `' '` — must consume the closing quote, or the payload character leaks
                // back into the stream (a leaked `"` would open a phantom string).
                self.bump();
                text.push(c);
                self.bump();
                text.push('\'');
                self.push(TokenKind::Char, text, line);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                // Could be `'x'` (char) or `'ident` (lifetime): read the ident run and
                // decide by whether a closing quote follows one character.
                let mut run = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        run.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') && run.chars().count() == 1 {
                    self.bump();
                    text.push_str(&run);
                    text.push('\'');
                    self.push(TokenKind::Char, text, line);
                } else {
                    text.push_str(&run);
                    self.push(TokenKind::Lifetime, text, line);
                }
            }
            Some('\'') => {
                // `''` — an empty char literal is not valid Rust; classify and move on.
                self.bump();
                text.push('\'');
                self.push(TokenKind::Char, text, line);
            }
            _ => self.push(TokenKind::Unknown, text, line),
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut float = false;
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'))
        {
            // Prefixed integer: digits, underscores and hex letters until the run ends.
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_ascii_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Int, text, line);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // A dot continues the literal only when it cannot start a method call, a field
        // access or a range (`1.max(2)`, `1..9` stay integers; `1.` and `1.5` are floats).
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    float = true;
                    text.push('.');
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                Some('.') => {}
                Some(c) if c == '_' || c.is_alphabetic() => {}
                _ => {
                    float = true;
                    text.push('.');
                    self.bump();
                }
            }
        }
        if matches!(self.peek(0), Some('e' | 'E')) {
            // An exponent makes it a float — but only when digits actually follow
            // (`1e9` yes; `1e` would be the integer `1` and the ident `e`).
            let sign = matches!(self.peek(1), Some('+' | '-'));
            let digit_at = if sign { 2 } else { 1 };
            if matches!(self.peek(digit_at), Some(c) if c.is_ascii_digit()) {
                float = true;
                text.push(self.bump().unwrap_or('e'));
                if sign {
                    text.push(self.bump().unwrap_or('+'));
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (`1f64`, `10u32`).
        if matches!(self.peek(0), Some(c) if c == '_' || c.is_alphabetic()) {
            let mut suffix = String::new();
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    suffix.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            if suffix.starts_with('f') {
                float = true;
            }
            text.push_str(&suffix);
        }
        let kind = if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokenKind, String)> {
        lex(source).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let toks = kinds("let x = 42 + 1.5;");
        assert_eq!(toks[0], (TokenKind::Ident, "let".to_string()));
        assert_eq!(toks[2], (TokenKind::Punct, "=".to_string()));
        assert_eq!(toks[3], (TokenKind::Int, "42".to_string()));
        assert_eq!(toks[5], (TokenKind::Float, "1.5".to_string()));
    }

    #[test]
    fn method_calls_and_ranges_keep_integers_integral() {
        assert_eq!(kinds("1.max(2)")[0].0, TokenKind::Int);
        assert_eq!(kinds("0..16")[0].0, TokenKind::Int);
        assert_eq!(kinds("1.")[0].0, TokenKind::Float);
        assert_eq!(kinds("2e-3")[0].0, TokenKind::Float);
        assert_eq!(kinds("1f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("0x1f")[0].0, TokenKind::Int);
    }

    #[test]
    fn strings_and_chars_and_lifetimes() {
        assert_eq!(kinds(r#""a \" b""#)[0].0, TokenKind::Str);
        assert_eq!(kinds(r##"r#"raw "quoted" text"#"##)[0].0, TokenKind::Str);
        assert_eq!(kinds("'x'")[0].0, TokenKind::Char);
        assert_eq!(kinds(r"'\n'")[0].0, TokenKind::Char);
        assert_eq!(kinds("'static")[0].0, TokenKind::Lifetime);
        assert_eq!(kinds("b'q'")[0].0, TokenKind::Char);
        assert_eq!(kinds(r#"b"bytes""#)[0].0, TokenKind::Str);
    }

    #[test]
    fn punctuation_char_literals_do_not_leak_their_payload() {
        // `'"'` must consume its closing quote — a leaked `"` would open a phantom
        // string and swallow the rest of the file.
        let toks = kinds(r#"match c { '"' => a, '/' => b, ' ' => d }"#);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            3,
            "{toks:?}"
        );
        assert!(
            !toks.iter().any(|(k, _)| *k == TokenKind::Str),
            "no phantom strings: {toks:?}"
        );
    }

    #[test]
    fn comments_keep_their_lines() {
        let toks = lex("// one\nfn two() {}\n/* three\nstill three */ four");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].text, "fn");
        assert_eq!(toks[1].line, 2);
        let block = toks.iter().find(|t| t.kind == TokenKind::BlockComment);
        assert_eq!(block.map(|t| t.line), Some(3));
        let last = toks.last().expect("tokens present");
        assert_eq!((last.text.as_str(), last.line), ("four", 4));
    }

    #[test]
    fn nested_block_comments_terminate() {
        let toks = lex("/* a /* b */ c */ after");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[1].text, "after");
    }

    #[test]
    fn hostile_inputs_lex_without_panicking() {
        for source in [
            "\"unterminated",
            "r#\"unterminated raw",
            "/* unterminated",
            "'",
            "b",
            "br####",
            "1e",
            "0x",
            "\u{0}\u{1}\u{2}",
            "r#invalid",
            "''",
            "'\\",
        ] {
            let _ = lex(source);
        }
    }
}
