//! Sample moments and order statistics.
//!
//! The statistical characterization error metrics of the paper (Eqs. 16–19) compare the
//! mean and standard deviation of delay / slew distributions produced by each method
//! against the Monte-Carlo baseline; this module provides those estimators plus the higher
//! moments used to demonstrate non-Gaussianity at low supply voltage (Fig. 9).

use serde::{Deserialize, Serialize};

/// Arithmetic mean of `samples`; `0.0` for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Unbiased (n−1) sample variance; `0.0` when fewer than two samples are given.
pub fn variance(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (samples.len() - 1) as f64
}

/// Sample standard deviation (square root of the unbiased variance).
pub fn std_dev(samples: &[f64]) -> f64 {
    variance(samples).sqrt()
}

/// Fisher skewness of the sample; `0.0` when it is not defined (fewer than three samples
/// or zero variance).
pub fn skewness(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n < 3 {
        return 0.0;
    }
    let m = mean(samples);
    let s = std_dev(samples);
    if s == 0.0 {
        return 0.0;
    }
    let m3 = samples.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n as f64;
    m3 / s.powi(3)
}

/// Excess kurtosis of the sample; `0.0` when not defined.
pub fn excess_kurtosis(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n < 4 {
        return 0.0;
    }
    let m = mean(samples);
    let s2 = variance(samples);
    if s2 == 0.0 {
        return 0.0;
    }
    let m4 = samples.iter().map(|x| (x - m).powi(4)).sum::<f64>() / n as f64;
    m4 / (s2 * s2) - 3.0
}

/// Linear-interpolated quantile of `samples` at probability `p ∈ [0, 1]`.
///
/// Uses the common "type 7" (Excel / NumPy default) definition.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `samples` is empty.
pub fn quantile(samples: &[f64], p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "quantile probability must be in [0, 1]"
    );
    assert!(!samples.is_empty(), "quantile of empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Pearson correlation coefficient between two equally long samples.
///
/// Returns `0.0` when either sample has zero variance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "correlation requires equal lengths");
    if x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx).powi(2);
        syy += (b - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// A compact summary of a univariate sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std_dev: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Median (50 % quantile).
    pub median: f64,
    /// Fisher skewness.
    pub skewness: f64,
    /// Excess kurtosis.
    pub excess_kurtosis: f64,
}

impl Summary {
    /// Computes the summary of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "summary of empty sample");
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self {
            count: samples.len(),
            mean: mean(samples),
            std_dev: std_dev(samples),
            min,
            max,
            median: quantile(samples, 0.5),
            skewness: skewness(samples),
            excess_kurtosis: excess_kurtosis(samples),
        }
    }

    /// Coefficient of variation `σ/µ`; `0.0` when the mean is zero.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }

    /// Returns `true` when the sample looks markedly non-Gaussian (|skewness| > 0.5 or
    /// |excess kurtosis| > 1.0) — the criterion used when reporting the Fig. 9 low-`Vdd`
    /// delay distribution.
    pub fn is_clearly_non_gaussian(&self) -> bool {
        self.skewness.abs() > 0.5 || self.excess_kurtosis.abs() > 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_variance_of_known_sample() {
        let s = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&s) - 5.0).abs() < 1e-12);
        assert!((variance(&s) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&s) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(skewness(&[1.0, 2.0]), 0.0);
        assert_eq!(excess_kurtosis(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(skewness(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(correlation(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn symmetric_sample_has_zero_skewness() {
        let s = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&s).abs() < 1e-12);
    }

    #[test]
    fn right_skewed_sample_is_positive() {
        let s = [1.0, 1.0, 1.0, 1.0, 10.0];
        assert!(skewness(&s) > 1.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 1.0), 4.0);
        assert!((quantile(&s, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&s, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile probability")]
    fn quantile_rejects_bad_probability() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn correlation_of_linear_relationship() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&x, &y) - 1.0).abs() < 1e-12);
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&x, &y_neg) + 1.0).abs() < 1e-12);
        let constant = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(correlation(&x, &constant), 0.0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = [1.0, 2.0, 3.0, 4.0, 100.0];
        let sum = Summary::from_samples(&s);
        assert_eq!(sum.count, 5);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 100.0);
        assert_eq!(sum.median, 3.0);
        assert!(sum.is_clearly_non_gaussian());
        assert!(sum.coefficient_of_variation() > 0.0);
    }

    #[test]
    fn gaussian_like_sample_is_not_flagged() {
        // A symmetric triangular sample: zero skew, light tails.
        let mut s: Vec<f64> = Vec::new();
        for i in 0..50 {
            for _ in 0..(50 - i) {
                s.push(i as f64);
                s.push(-(i as f64));
            }
        }
        let sum = Summary::from_samples(&s);
        assert!(sum.skewness.abs() < 0.5);
        assert!(!sum.is_clearly_non_gaussian() || sum.excess_kurtosis.abs() <= 1.0);
    }

    proptest! {
        #[test]
        fn prop_mean_within_range(samples in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
            let m = mean(&samples);
            let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }

        #[test]
        fn prop_variance_nonnegative_and_shift_invariant(
            samples in proptest::collection::vec(-1e3f64..1e3, 2..64),
            shift in -1e3f64..1e3,
        ) {
            let v = variance(&samples);
            prop_assert!(v >= 0.0);
            let shifted: Vec<f64> = samples.iter().map(|x| x + shift).collect();
            prop_assert!((variance(&shifted) - v).abs() < 1e-6 * (1.0 + v));
        }

        #[test]
        fn prop_quantile_monotone(samples in proptest::collection::vec(-1e3f64..1e3, 1..64),
                                  p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(quantile(&samples, lo) <= quantile(&samples, hi) + 1e-12);
        }

        #[test]
        fn prop_correlation_bounded(x in proptest::collection::vec(-1e3f64..1e3, 2..32),
                                    y in proptest::collection::vec(-1e3f64..1e3, 2..32)) {
            let n = x.len().min(y.len());
            let r = correlation(&x[..n], &y[..n]);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }
}
